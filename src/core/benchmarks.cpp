#include "core/benchmarks.h"

#include <cassert>

#include "common/strings.h"
#include "lang/parser.h"

namespace rapar {

namespace {

Program MustParse(const std::string& text) {
  Expected<Program> p = ParseProgram(text);
  assert(p.ok() && "benchmark program must parse");
  return std::move(p).value();
}

ParamSystem MustBuild(ParamSystem::Builder& builder) {
  Expected<ParamSystem> sys = builder.Build();
  assert(sys.ok() && "benchmark system must build");
  return std::move(sys).value();
}

}  // namespace

BenchmarkCase ProducerConsumer(int z) {
  const int dom = z + 2;
  std::string producer =
      StrCat("program producer\nvars x y\nregs r s\ndom ", dom,
             "\nbegin\n  r := y;\n  assume (r == 1);\n");
  if (z == 1) {
    producer += "  s := 1;\n  x := s\n";
  } else {
    producer += "  choice {\n";
    for (int i = 1; i <= z; ++i) {
      producer += StrCat("    s := ", i, ";\n    x := s\n");
      producer += (i < z) ? "  } or {\n" : "  }\n";
    }
  }
  producer += "end\n";

  std::string consumer = StrCat(
      "program consumer\nvars x y\nregs s one\ndom ", dom,
      "\nbegin\n  one := 1;\n  y := one;\n");
  for (int i = 1; i <= z; ++i) {
    consumer += StrCat("  s := x;\n  assume (s == ", i, ");\n");
  }
  consumer += "  assert false\nend\n";

  ParamSystem::Builder b;
  b.Env(MustParse(producer)).Dis(MustParse(consumer));
  BenchmarkCase c{
      StrCat("producer-consumer(z=", z, ")"),
      "env(nocas) || dis(acyc)",
      "Figure 1/3: unboundedly many producers publish 1..z after the "
      "start flag; the consumer demands the increasing sequence and then "
      "asserts. Reachable for every z with enough producers.",
      MustBuild(b),
      /*expected_unsafe=*/true};
  return c;
}

BenchmarkCase ProducerConsumerSafe(int z) {
  const int dom = z + 2;
  std::string producer =
      StrCat("program producer\nvars x y\nregs r s\ndom ", dom,
             "\nbegin\n  r := y;\n  assume (r == 1);\n");
  if (z == 1) {
    producer += "  s := 1;\n  x := s\n";
  } else {
    producer += "  choice {\n";
    for (int i = 1; i <= z; ++i) {
      producer += StrCat("    s := ", i, ";\n    x := s\n");
      producer += (i < z) ? "  } or {\n" : "  }\n";
    }
  }
  producer += "end\n";

  std::string consumer = StrCat(
      "program consumer\nvars x y\nregs s one\ndom ", dom,
      "\nbegin\n  one := 1;\n  y := one;\n");
  for (int i = 1; i <= z + 1; ++i) {
    consumer += StrCat("  s := x;\n  assume (s == ", i, ");\n");
  }
  consumer += "  assert false\nend\n";

  ParamSystem::Builder b;
  b.Env(MustParse(producer)).Dis(MustParse(consumer));
  BenchmarkCase c{
      StrCat("producer-consumer-safe(z=", z, ")"),
      "env(nocas) || dis(acyc)",
      "Safe producer-consumer: producers publish only 1..z but the "
      "consumer's last demand is z+1, so the assertion is unreachable "
      "for every instance size (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
  return c;
}

BenchmarkCase PetersonRa() {
  // Entry protocol per thread, one-shot (wait loops re-modelled as
  // load+assume per §1 of the paper). Critical-section overlap is
  // detected via crit flags.
  const char* kVars = "vars f0 f1 turn c0 c1";
  std::string t0 = StrCat(
      "program peterson0\n", kVars, "\nregs a one\ndom 2\nbegin\n",
      "  one := 1;\n  f0 := one;\n  turn := one;\n",
      "  choice {\n    a := f1;\n    assume (a == 0)\n",
      "  } or {\n    a := turn;\n    assume (a == 0)\n  };\n",
      "  c0 := one;\n  a := c1;\n  assume (a == 1);\n  assert false\nend\n");
  std::string t1 = StrCat(
      "program peterson1\n", kVars, "\nregs a one zero\ndom 2\nbegin\n",
      "  one := 1;\n  zero := 0;\n  f1 := one;\n  turn := zero;\n",
      "  choice {\n    a := f0;\n    assume (a == 0)\n",
      "  } or {\n    a := turn;\n    assume (a == 1)\n  };\n",
      "  c1 := one\nend\n");
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 2\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(t0)).Dis(MustParse(t1));
  return BenchmarkCase{
      "peterson-ra",
      "dis(nocas,acyc) || dis(nocas,acyc)",
      "Peterson's mutual exclusion without SC fences: both threads can "
      "read the other's stale flag under RA, so the critical sections "
      "overlap (unsafe).",
      MustBuild(b),
      /*expected_unsafe=*/true};
}

BenchmarkCase DekkerFences() {
  const char* kVars = "vars x y c0 c1";
  std::string t0 = StrCat(
      "program dekker0\n", kVars, "\nregs a one\ndom 2\nbegin\n",
      "  one := 1;\n  x := one;\n  a := y;\n  assume (a == 0);\n",
      "  c0 := one;\n  a := c1;\n  assume (a == 1);\n  assert false\nend\n");
  std::string t1 = StrCat(
      "program dekker1\n", kVars, "\nregs a one\ndom 2\nbegin\n",
      "  one := 1;\n  y := one;\n  a := x;\n  assume (a == 0);\n",
      "  c1 := one\nend\n");
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 2\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(t0)).Dis(MustParse(t1));
  return BenchmarkCase{
      "dekker-fences",
      "dis(nocas,acyc) || dis(nocas,acyc)",
      "Dekker's entry core (store-buffering): RA admits both threads "
      "reading 0, so both enter the critical section (unsafe).",
      MustBuild(b),
      /*expected_unsafe=*/true};
}

BenchmarkCase Lamport2Ra() {
  // Lamport's fast mutex, fast path, thread ids 1 and 2.
  const char* kVars = "vars x y c1 c2";
  std::string t1 = StrCat(
      "program lamport1\n", kVars, "\nregs a id one\ndom 3\nbegin\n",
      "  id := 1;\n  one := 1;\n  x := id;\n  a := y;\n  assume (a == 0);\n",
      "  y := id;\n  a := x;\n  assume (a == 1);\n",
      "  c1 := one;\n  a := c2;\n  assume (a == 1);\n  assert false\nend\n");
  std::string t2 = StrCat(
      "program lamport2\n", kVars, "\nregs a id one\ndom 3\nbegin\n",
      "  id := 2;\n  one := 1;\n  x := id;\n  a := y;\n  assume (a == 0);\n",
      "  y := id;\n  a := x;\n  assume (a == 2);\n",
      "  c2 := one\nend\n");
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 3\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(t1)).Dis(MustParse(t2));
  return BenchmarkCase{
      "lamport-2-ra",
      "dis(nocas,acyc) || dis(nocas,acyc)",
      "Lamport's fast mutex fast path: stale reads of x and y under RA "
      "let both threads pass their checks (unsafe).",
      MustBuild(b),
      /*expected_unsafe=*/true};
}

BenchmarkCase Barrier() {
  const char* kVars = "vars go done";
  std::string env = StrCat(
      "program worker\n", kVars, "\nregs r one\ndom 2\nbegin\n",
      "  r := go;\n  assume (r == 1);\n  one := 1;\n  done := one\nend\n");
  std::string coord = StrCat(
      "program coordinator\n", kVars, "\nregs d one\ndom 2\nbegin\n",
      "  one := 1;\n  go := one;\n  d := done;\n  assume (d == 1);\n",
      "  assert false\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(coord));
  return BenchmarkCase{
      "barrier",
      "env(nocas) || dis(acyc)",
      "Barrier rendezvous: the coordinator releases the workers and then "
      "observes a completion (the assert marks reachability of the "
      "rendezvous, which must be reachable).",
      MustBuild(b),
      /*expected_unsafe=*/true};
}

BenchmarkCase Spinlock() {
  const char* kVars = "vars l c0 c1";
  auto contender = [&](int i, bool checker) {
    std::string p = StrCat("program spin", i, "\n", kVars,
                           "\nregs zero one a\ndom 2\nbegin\n",
                           "  zero := 0;\n  one := 1;\n",
                           "  cas(l, zero, one);\n  c", i, " := one\n");
    if (checker) {
      p = StrCat("program spin", i, "\n", kVars,
                 "\nregs zero one a\ndom 2\nbegin\n",
                 "  zero := 0;\n  one := 1;\n",
                 "  cas(l, zero, one);\n  c", i, " := one;\n  a := c",
                 1 - i, ";\n  assume (a == 1);\n  assert false\n");
    }
    return p + "end\n";
  };
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 2\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env))
      .Dis(MustParse(contender(0, true)))
      .Dis(MustParse(contender(1, false)));
  return BenchmarkCase{
      "spinlock",
      "dis(acyc) || dis(acyc)",
      "Test-and-set lock: CAS atomicity guarantees at most one winner, so "
      "the critical sections cannot overlap (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

BenchmarkCase ChaseLevDeque() {
  const char* kVars = "vars task bottom top";
  std::string owner = StrCat(
      "program owner\n", kVars, "\nregs one\ndom 2\nbegin\n",
      "  one := 1;\n  task := one;\n  bottom := one\nend\n");
  std::string stealer = StrCat(
      "program stealer\n", kVars, "\nregs b t zero one\ndom 2\nbegin\n",
      "  b := bottom;\n  assume (b == 1);\n",
      "  zero := 0;\n  one := 1;\n  cas(top, zero, one);\n",
      "  t := task;\n  assume (t == 0);\n  assert false\nend\n");
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 2\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(owner)).Dis(MustParse(stealer));
  return BenchmarkCase{
      "chase-lev-deque",
      "dis(nocas,acyc) || dis(acyc)",
      "Work-stealing deque core (bounded loop unrolled, single CAS in the "
      "stealer): the release store to bottom publishes the task, so a "
      "successful steal never observes an uninitialised task (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

BenchmarkCase Rcu() {
  const char* kVars = "vars data ptr";
  std::string writer = StrCat(
      "program writer\n", kVars, "\nregs one\ndom 2\nbegin\n",
      "  one := 1;\n  data := one;\n  ptr := one\nend\n");
  std::string reader = StrCat(
      "program reader\n", kVars, "\nregs p d\ndom 2\nbegin\n",
      "  p := ptr;\n  assume (p == 1);\n  d := data;\n",
      "  assume (d == 0);\n  assert false\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(writer)).Dis(MustParse(reader));
  return BenchmarkCase{
      "rcu",
      "env(nocas) || dis(acyc)",
      "RCU-style publication: unboundedly many writers publish data then "
      "flip the pointer; a reader that sees the pointer can never read "
      "the unpublished data (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

BenchmarkCase PhoenixAccumulate(int claimed_bound) {
  const int dom = claimed_bound + 2;
  std::string worker = StrCat(
      "program worker\nvars acc\nregs r\ndom ", dom,
      "\nbegin\n  r := acc;\n  r := r + 1;\n  acc := r\nend\n");
  std::string checker = StrCat(
      "program checker\nvars acc\nregs r\ndom ", dom,
      "\nbegin\n  r := acc;\n  assume (r == ", claimed_bound + 1,
      ");\n  assert false\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(worker)).Dis(MustParse(checker));
  return BenchmarkCase{
      StrCat("phoenix-accumulate(bound=", claimed_bound, ")"),
      "env(nocas,acyc) || dis(acyc)",
      "Phoenix-2.0-style reduction core: unboundedly many workers "
      "load-increment-store a shared accumulator. With unboundedly many "
      "workers every counter value is reachable, so any claimed bound is "
      "violated (unsafe).",
      MustBuild(b),
      /*expected_unsafe=*/true};
}

BenchmarkCase Seqlock() {
  const char* kVars = "vars seq data";
  std::string writer = StrCat(
      "program writer\n", kVars, "\nregs one two\ndom 4\nbegin\n",
      "  one := 1;\n  two := 2;\n  seq := one;\n  data := one;\n",
      "  seq := two\nend\n");
  // Reader: sample seq (must be even = 0 or 2), read data, re-check seq
  // unchanged; a torn snapshot would be data==1 with seq stable at 0.
  std::string reader = StrCat(
      "program reader\n", kVars, "\nregs r1 r2 d\ndom 4\nbegin\n",
      "  r1 := seq;\n  assume (r1 == 0);\n  d := data;\n",
      "  r2 := seq;\n  assume (r2 == 0);\n  assume (d == 1);\n",
      "  assert false\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(reader)).Dis(MustParse(writer));
  return BenchmarkCase{
      "seqlock",
      "env(nocas,acyc) || dis(acyc)",
      "Seqlock core: a stable even sequence number implies an untorn "
      "snapshot — the data write is sandwiched between the seq bumps, so "
      "a reader that saw data==1 has joined seq>=1 and cannot re-read "
      "seq==0 (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

BenchmarkCase PetersonHandover() {
  const char* kVars = "vars f0 f1 turn c0 c1";
  // The checker owns the first critical section: it may enter only
  // while turn is still 0 and publishes turn := 1 strictly afterwards.
  std::string checker = StrCat(
      "program handover0\n", kVars, "\nregs a b one\ndom 2\nbegin\n",
      "  one := 1;\n  f0 := one;\n  a := turn;\n  assume (a == 0);\n",
      "  c0 := one;\n  b := c1;\n",
      "  choice {\n    assume (b == 1);\n    assert false\n",
      "  } or {\n    skip\n  };\n",
      "  turn := one\nend\n");
  // Peers (any number of copies) wait for the handover: they enter only
  // after observing turn == 1 and the checker's flag.
  std::string peer = StrCat(
      "program peer\n", kVars, "\nregs a b one\ndom 2\nbegin\n",
      "  one := 1;\n  f1 := one;\n  a := turn;\n  b := f0;\n",
      "  assume (a == 1 && b == 1);\n  c1 := one\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(peer)).Dis(MustParse(checker));
  return BenchmarkCase{
      "peterson-handover",
      "env(nocas) || dis(nocas,acyc)",
      "Peterson-style turn handover: turn := 1 is published only after "
      "the checker's critical section, and every peer must observe it "
      "before entering — the sections cannot overlap (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

BenchmarkCase DekkerCas() {
  const char* kVars = "vars x y k c0 c1";
  std::string t0 = StrCat(
      "program dekkercas0\n", kVars, "\nregs zero one a b\ndom 2\nbegin\n",
      "  zero := 0;\n  one := 1;\n  x := one;\n  a := y;\n",
      "  cas(k, zero, one);\n  c0 := one;\n  b := c1;\n",
      "  choice {\n    assume (b == 1);\n    assert false\n",
      "  } or {\n    skip\n  }\nend\n");
  std::string t1 = StrCat(
      "program dekkercas1\n", kVars, "\nregs zero one a\ndom 2\nbegin\n",
      "  zero := 0;\n  one := 1;\n  y := one;\n  a := x;\n",
      "  cas(k, zero, one);\n  c1 := one\nend\n");
  std::string env =
      StrCat("program env\n", kVars, "\nregs r\ndom 2\nbegin\n  skip\nend\n");
  ParamSystem::Builder b;
  b.Env(MustParse(env)).Dis(MustParse(t0)).Dis(MustParse(t1));
  return BenchmarkCase{
      "dekker-cas",
      "dis(acyc) || dis(acyc)",
      "Dekker's entry core arbitrated by a one-shot CAS: the (k,0) dis "
      "message is consumable at most once, so only one contender wins "
      "and the critical sections cannot overlap (safe).",
      MustBuild(b),
      /*expected_unsafe=*/false};
}

std::vector<BenchmarkCase> StandardBenchmarks() {
  std::vector<BenchmarkCase> out;
  out.push_back(ProducerConsumer(2));
  out.push_back(ProducerConsumer(4));
  out.push_back(PetersonRa());
  out.push_back(DekkerFences());
  out.push_back(Lamport2Ra());
  out.push_back(Barrier());
  out.push_back(Spinlock());
  out.push_back(ChaseLevDeque());
  out.push_back(Rcu());
  out.push_back(PhoenixAccumulate(3));
  out.push_back(Seqlock());
  out.push_back(PetersonHandover());
  out.push_back(DekkerCas());
  return out;
}

}  // namespace rapar
