// ParamSystem: a parameterized system env(nocas) ‖ dis_1(acyc) ‖ … ‖
// dis_n(acyc), the object of the safety verification problem.
//
// Programs may be written against their own variable tables; the builder
// unifies them by name into one system-wide table and remaps all accesses.
// dis programs with loops are brought into the acyc class by bounded
// unrolling (the under-approximate bounded-model-checking regime §4 notes
// this class captures).
#ifndef RAPAR_CORE_PARAM_SYSTEM_H_
#define RAPAR_CORE_PARAM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/expected.h"
#include "lang/cfa.h"
#include "lang/classify.h"
#include "lang/program.h"
#include "simplified/transitions.h"

namespace rapar {

class ParamSystem {
 public:
  class Builder {
   public:
    // Sets the program run by the unboundedly many env threads. Must be
    // CAS-free; loops are allowed.
    Builder& Env(Program program) {
      env_ = std::move(program);
      have_env_ = true;
      return *this;
    }
    // Adds one distinguished thread. CAS allowed; loops must either be
    // absent or be removed by the unroll bound.
    Builder& Dis(Program program) {
      dis_.push_back(std::move(program));
      return *this;
    }
    // Unroll bound applied to dis programs that contain loops (default 0:
    // reject loops).
    Builder& UnrollDis(int k) {
      unroll_ = k;
      return *this;
    }

    // Validates the class constraints and unifies symbol tables.
    Expected<ParamSystem> Build() const;

   private:
    Program env_;
    bool have_env_ = false;
    std::vector<Program> dis_;
    int unroll_ = 0;
  };

  // The unified variable table (shared by all programs).
  const VarTable& vars() const { return vars_; }
  Value dom() const { return dom_; }

  const Program& env_program() const { return env_program_; }
  const std::vector<Program>& dis_programs() const { return dis_programs_; }

  const Cfa& env_cfa() const { return *env_cfa_; }
  const Cfa& dis_cfa(std::size_t i) const { return *dis_cfas_[i]; }
  std::size_t num_dis() const { return dis_cfas_.size(); }

  // The SimplSystem view consumed by the explorers and encoders.
  const SimplSystem& simpl() const { return simpl_; }

  // The timestamp budget T of §4.1: total store+CAS instructions over the
  // (acyclic) dis programs.
  int TimestampBudget() const;
  // Q0 = |Dom|·|Var| + |dis| (§4.2).
  int Q0() const;

  // Class signature, e.g. "env(nocas) || dis1(acyc) || dis2(nocas,acyc)".
  std::string Signature() const;

  // ParamSystem is movable but not copyable (CFAs are owned & referenced
  // by simpl_).
  ParamSystem(ParamSystem&&) = default;
  ParamSystem& operator=(ParamSystem&&) = default;
  ParamSystem(const ParamSystem&) = delete;
  ParamSystem& operator=(const ParamSystem&) = delete;

 private:
  friend class Builder;
  ParamSystem() = default;

  VarTable vars_;
  Value dom_ = 2;
  Program env_program_;
  std::vector<Program> dis_programs_;
  std::unique_ptr<Cfa> env_cfa_;
  std::vector<std::unique_ptr<Cfa>> dis_cfas_;
  SimplSystem simpl_;
};

}  // namespace rapar

#endif  // RAPAR_CORE_PARAM_SYSTEM_H_
