// Renders abstract witness runs in the style of the paper's Figures 1/3:
// one line per step with the instruction, the message read/written
// (including its abstract view), and optional memory snapshots.
#ifndef RAPAR_CORE_TRACE_RENDER_H_
#define RAPAR_CORE_TRACE_RENDER_H_

#include <string>
#include <vector>

#include "simplified/explorer.h"

namespace rapar {

struct TraceRenderOptions {
  // Print the full abstract memory after every store.
  bool memory_snapshots = false;
  // Suppress steps that neither touch memory nor decide control (silent
  // register bookkeeping).
  bool elide_silent = false;
};

// Deterministically replays `witness` and renders it. Views are printed
// in the N ∪ N⁺ notation (e.g. "x->1+").
std::string RenderTrace(const SimplSystem& sys,
                        const std::vector<SimplStep>& witness,
                        const TraceRenderOptions& options = {});

}  // namespace rapar

#endif  // RAPAR_CORE_TRACE_RENDER_H_
