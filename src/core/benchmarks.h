// The benchmark programs the paper's introduction uses to motivate the
// system class (Phoenix-2.0 / Norris-Demsky model-checker benchmarks /
// Lahav-Margalit robustness suite). The original repositories are external
// C programs; we re-model the concurrency cores cited in §1 directly in
// Com, following the classification the paper assigns to each benchmark.
#ifndef RAPAR_CORE_BENCHMARKS_H_
#define RAPAR_CORE_BENCHMARKS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/param_system.h"

namespace rapar {

struct BenchmarkCase {
  std::string name;
  // The paper's class signature for this benchmark.
  std::string paper_class;
  std::string description;
  ParamSystem system;
  // Expected verdict of Verify() where analytically known (RA litmus
  // facts); unset when the verdict is established by the tool itself.
  std::optional<bool> expected_unsafe;
};

// --- Individual benchmark constructors --------------------------------------

// Figure 1/3: producer-consumer; consumer demands values 1..z.
BenchmarkCase ProducerConsumer(int z);
// Safe variant: the consumer additionally demands the value z+1, which no
// producer ever publishes — the assertion is unreachable. Verifying it
// requires the exhaustive guess enumeration (no early exit), which makes
// the family a join-heavy workload for engine benchmarking; not part of
// StandardBenchmarks().
BenchmarkCase ProducerConsumerSafe(int z);
// Peterson's mutual exclusion (RA version, no SC fences): unsafe under RA.
BenchmarkCase PetersonRa();
// Dekker-style store-buffering mutual exclusion core: unsafe under RA.
BenchmarkCase DekkerFences();
// Lamport's fast mutex (2 threads, fast path): unsafe under RA.
BenchmarkCase Lamport2Ra();
// Sense-reversing barrier core with env workers and a dis coordinator.
BenchmarkCase Barrier();
// Test-and-set spinlock via CAS: mutual exclusion holds (safe).
BenchmarkCase Spinlock();
// Chase-Lev work-stealing deque core (bounded, unrolled; one CAS in the
// stealer): the stolen task is always initialised (safe MP pattern).
BenchmarkCase ChaseLevDeque();
// RCU-style publish pattern: readers never see unpublished data (safe).
BenchmarkCase Rcu();
// Phoenix-style parallel accumulation (histogram/word-count core): env
// workers do load-increment-store on a shared accumulator. Lost updates
// AND unbounded replication are possible; parameterized verification
// shows any counter value is reachable (unsafe as a bound check).
BenchmarkCase PhoenixAccumulate(int claimed_bound);
// Seqlock core: a dis writer bumps seq around the data write; env readers
// accept a snapshot only when seq is stable — torn reads are impossible
// under RA (safe).
BenchmarkCase Seqlock();
// Peterson-style turn handover: the checker enters its critical section
// while turn == 0 and hands turn over only afterwards; peers may enter
// only after observing turn == 1 (and the checker's flag). Mutual
// exclusion holds (safe) — and proving it statically needs the
// relational TMAI domain (rule R1: no (turn,1) message can exist while
// the sole producer still sits in its critical section).
BenchmarkCase PetersonHandover();
// Dekker-style entry protocol arbitrated by a one-shot CAS on k: both
// contenders CAS k from 0 to 1, and the (k,0) dis message is consumable
// at most once, so only one critical section opens (safe). Statically
// provable only by the relational TMAI domain (rule R2: the checker's
// own successful CAS consumed the unique (k,0) pair that every
// production of (c1,1) must also consume).
BenchmarkCase DekkerCas();

// The whole suite.
std::vector<BenchmarkCase> StandardBenchmarks();

}  // namespace rapar

#endif  // RAPAR_CORE_BENCHMARKS_H_
