// Stable machine-readable result envelopes (--format=json).
//
// Two shapes, shared by rapar_cli and the golden-schema tests so the
// emitters cannot drift from what the tests pin down:
//
//   VerdictToJson      — verify/mg: schema_version, tool, command, system
//                        signature, verdict, exit_code, the backend that
//                        produced the verdict, witness, env_thread_bound,
//                        stopped_phase, the effective options, and the
//                        full telemetry registry.
//   DiagnosticsToJson  — lint/dlanalyze: schema_version, tool, command,
//                        diagnostics array (file, line, col, code,
//                        severity, message) and a severity summary.
//
// Versioning contract: fields may be ADDED under the same
// schema_version; renaming or removing one (or changing a type) bumps
// kResultSchemaVersion. Consumers should ignore unknown fields.
#ifndef RAPAR_CORE_RESULT_JSON_H_
#define RAPAR_CORE_RESULT_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/verifier.h"

namespace rapar {

inline constexpr int kResultSchemaVersion = 1;

// "safe", "unsafe" or "unknown".
const char* VerdictName(Verdict::Result r);
// The CLI exit code the verdict maps to (0 / 1 / 2).
int VerdictExitCode(const Verdict& v);

// Serve-mode additions to the verify/mg envelope (core/serve.h). Every
// field is optional; with none set the envelope is exactly what one-shot
// verify emits, which is what makes the cache-replay differential a
// byte-comparison.
struct EnvelopeExtras {
  // Client-chosen request id, echoed back verbatim as pre-rendered JSON
  // (any JSON value). Empty = key omitted.
  std::string id_json;
  // Content-address of the request (hex digest of the canonical
  // normalization). Empty = key omitted.
  std::string fingerprint;
  // "hit" (envelope replayed from the verdict cache) or "miss" (the
  // pipeline ran). Empty = key omitted.
  std::string cache;
};

// Renders the verify/mg envelope. `command` is "verify" or "mg";
// `system_signature` is ParamSystem::Signature() (empty = omitted).
// `pretty` selects indented output (the CLI one-shot default) or the
// single-line form serve uses for its newline-delimited wire protocol.
std::string VerdictToJson(const Verdict& v, const VerifierOptions& options,
                          std::string_view command,
                          std::string_view system_signature,
                          bool pretty = true,
                          const EnvelopeExtras* extras = nullptr);

// Renders the diagnostics envelope for lint/dlanalyze. Each entry pairs
// the file the diagnostic is about (or a pseudo-file like "makeP") with
// the diagnostic itself.
std::string DiagnosticsToJson(
    std::string_view command,
    const std::vector<std::pair<std::string, Diagnostic>>& diagnostics);

}  // namespace rapar

#endif  // RAPAR_CORE_RESULT_JSON_H_
