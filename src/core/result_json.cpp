#include "core/result_json.h"

#include "common/json.h"
#include "tmai/certcheck.h"

namespace rapar {

namespace {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kSimplifiedExplorer:
      return "simplified";
    case Backend::kDatalog:
      return "datalog";
    case Backend::kConcrete:
      return "concrete";
    case Backend::kTmai:
      return "tmai";
    case Backend::kPortfolio:
      return "portfolio";
  }
  return "unknown";
}

}  // namespace

const char* VerdictName(Verdict::Result r) {
  switch (r) {
    case Verdict::Result::kSafe:
      return "safe";
    case Verdict::Result::kUnsafe:
      return "unsafe";
    case Verdict::Result::kUnknown:
      return "unknown";
  }
  return "unknown";
}

int VerdictExitCode(const Verdict& v) {
  return v.unsafe() ? 1 : (v.safe() ? 0 : 2);
}

std::string VerdictToJson(const Verdict& v, const VerifierOptions& options,
                          std::string_view command,
                          std::string_view system_signature, bool pretty,
                          const EnvelopeExtras* extras) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Key("schema_version").Int(kResultSchemaVersion);
  w.Key("tool").String("rapar");
  w.Key("command").String(command);
  if (extras != nullptr && !extras->id_json.empty()) {
    w.Key("id").Raw(extras->id_json);
  }
  if (extras != nullptr && !extras->fingerprint.empty()) {
    w.Key("fingerprint").String(extras->fingerprint);
  }
  if (extras != nullptr && !extras->cache.empty()) {
    w.Key("cache").String(extras->cache);
  }
  if (!system_signature.empty()) {
    w.Key("system").String(system_signature);
  }
  w.Key("verdict").String(VerdictName(v.result));
  w.Key("exit_code").Int(VerdictExitCode(v));
  // The backend that actually produced the verdict — distinct from the
  // requested options.backend when the portfolio driver picked a winner
  // ("portfolio:datalog" etc.).
  w.Key("backend").String(v.backend.empty() ? BackendName(options.backend)
                                            : v.backend);
  w.Key("witness");
  if (v.witness.empty()) {
    w.Null();
  } else {
    w.String(v.witness);
  }
  w.Key("env_thread_bound");
  if (v.env_thread_bound.has_value()) {
    w.Int(*v.env_thread_bound);
  } else {
    w.Null();
  }
  w.Key("stopped_phase");
  if (v.stopped_phase.empty()) {
    w.Null();
  } else {
    w.String(v.stopped_phase);
  }
  if (!v.width_report.empty()) {
    w.Key("width_report").String(v.width_report);
  }
  // Invariant certificate justifying a TMAI kSafe verdict. Like
  // width_report the key is conditional: certificate-free envelopes keep
  // the exact key set of earlier schema-version-1 releases.
  if (v.certificate != nullptr) {
    w.Key("certificate");
    tmai::WriteCertificateJson(*v.certificate, &w);
  }
  // Sharding / checkpoint-resume sections. Activity-gated like
  // width_report: a default single-shard, no-resume run emits neither
  // key, so pre-shard envelopes (and the goldens over them) are
  // byte-for-byte unchanged at kResultSchemaVersion = 1. The
  // --shards orchestrator merges per-shard envelopes on this section
  // (core/shard.h) and replaces it with the per-shard summary.
  if (v.telemetry.Has(obs::metric::kShardCount)) {
    w.Key("shard").BeginObject();
    w.Key("index").UInt(v.telemetry.counter(obs::metric::kShardIndex));
    w.Key("count").UInt(v.telemetry.counter(obs::metric::kShardCount));
    if (v.telemetry.Has(obs::metric::kShardTerminatingIndex)) {
      w.Key("terminating_index")
          .UInt(v.telemetry.counter(obs::metric::kShardTerminatingIndex));
    }
    w.EndObject();
  }
  if (v.telemetry.Has(obs::metric::kCheckpointResumeOffset) ||
      v.telemetry.Has(obs::metric::kCheckpointWrites)) {
    w.Key("checkpoint").BeginObject();
    w.Key("resume_offset")
        .UInt(v.telemetry.counter(obs::metric::kCheckpointResumeOffset));
    w.Key("writes").UInt(v.telemetry.counter(obs::metric::kCheckpointWrites));
    w.EndObject();
  }
  w.Key("options").BeginObject();
  w.Key("backend").String(BackendName(options.backend));
  w.Key("enable_prepass").Bool(options.enable_prepass);
  w.Key("datalog").BeginObject();
  w.Key("enable_dlopt").Bool(options.datalog.enable_dlopt);
  w.Key("threads").UInt(options.datalog.threads);
  w.Key("batch_size").UInt(options.datalog.batch_size);
  w.EndObject();
  w.Key("concrete").BeginObject();
  w.Key("env_threads").Int(options.concrete.env_threads);
  w.EndObject();
  w.Key("max_states").UInt(options.max_states);
  w.Key("max_depth").Int(options.max_depth);
  w.Key("time_budget_ms").Int(options.time_budget_ms);
  w.Key("max_guesses").UInt(options.max_guesses);
  w.EndObject();
  w.Key("telemetry");
  v.telemetry.WriteJson(w);
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

std::string DiagnosticsToJson(
    std::string_view command,
    const std::vector<std::pair<std::string, Diagnostic>>& diagnostics) {
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const auto& [file, d] : diagnostics) {
    switch (d.severity) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
  }
  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.Key("schema_version").Int(kResultSchemaVersion);
  w.Key("tool").String("rapar");
  w.Key("command").String(command);
  w.Key("diagnostics").BeginArray();
  for (const auto& [file, d] : diagnostics) {
    w.BeginObject();
    w.Key("file").String(file);
    w.Key("line").Int(d.loc.line);
    w.Key("col").Int(d.loc.col);
    w.Key("code").String(d.code);
    w.Key("severity").String(SeverityName(d.severity));
    w.Key("message").String(d.message);
    w.EndObject();
  }
  w.EndArray();
  w.Key("summary").BeginObject();
  w.Key("errors").UInt(errors);
  w.Key("warnings").UInt(warnings);
  w.Key("notes").UInt(notes);
  w.EndObject();
  w.EndObject();
  std::string out = w.TakeString();
  out += '\n';
  return out;
}

}  // namespace rapar
