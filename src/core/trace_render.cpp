#include "core/trace_render.h"

#include "common/strings.h"

namespace rapar {

namespace {

std::string ViewStr(const View& vw, const VarTable& vars) {
  std::string out = "{";
  for (std::size_t i = 0; i < vw.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(vars.Name(VarId(static_cast<std::uint32_t>(i))), "->",
                  AbsTsToString(vw.Slot(i)));
  }
  return out + "}";
}

std::string MemorySnapshot(const SimplConfig& cfg, const VarTable& vars) {
  std::string out;
  for (std::size_t xi = 0; xi < cfg.num_vars(); ++xi) {
    const VarId x(static_cast<std::uint32_t>(xi));
    out += StrCat("      ", vars.Name(x), ":");
    for (const DisMsg& m : cfg.DisMsgsOf(x)) {
      out += StrCat(" [", AbsTsToString(m.view[x]), m.glued ? "g" : "",
                    ":", m.val, "]");
    }
    for (const EnvMsg& m : cfg.env_msgs()) {
      if (m.var != x) continue;
      out += StrCat(" (", AbsTsToString(m.ts()), ":", m.val, ")");
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string RenderTrace(const SimplSystem& sys,
                        const std::vector<SimplStep>& witness,
                        const TraceRenderOptions& options) {
  const VarTable& vars = sys.env->program().vars();
  SimplConfig cfg = InitialConfig(sys);
  std::string out;
  int step_no = 0;
  for (const SimplStep& step : witness) {
    const bool is_env = step.actor == SimplStep::Actor::kEnv;
    const Cfa& cfa = is_env ? *sys.env : *sys.dis[step.actor_index];
    const Instr& instr = cfa.Edge(EdgeId(step.edge)).instr;
    StepEffect eff = ApplyStep(sys, cfg, step);

    if (options.elide_silent && !eff.read && !eff.wrote &&
        !step.violation && instr.kind != Instr::Kind::kAssume) {
      ++step_no;
      continue;
    }

    std::string who =
        is_env ? "env " : StrCat("dis", step.actor_index, " ");
    out += StrCat("  ", step_no, ": ", who,
                  instr.ToString(cfa.program().vars(),
                                 cfa.program().regs()));
    if (eff.read) {
      out += StrCat("   <- reads ", eff.read_is_env ? "env" : "dis",
                    " msg (", vars.Name(eff.read_var), ",", eff.read_val,
                    ") ", ViewStr(eff.read_view, vars));
    }
    if (eff.wrote) {
      out += StrCat("   -> writes ", eff.wrote_is_env ? "env" : "dis",
                    " msg (", vars.Name(eff.wrote_var), ",", eff.wrote_val,
                    ") ", ViewStr(eff.wrote_view, vars));
      if (!eff.wrote_fresh) out += " (re-insertion)";
    }
    if (step.violation) out += "   ** assertion violation **";
    out += "\n";
    if (options.memory_snapshots && eff.wrote) {
      out += MemorySnapshot(cfg, vars);
    }
    ++step_no;
  }
  return out;
}

}  // namespace rapar
