#include "core/verifier.h"

#include <map>

#include "common/strings.h"
#include "core/trace_render.h"
#include "depgraph/dep_graph.h"
#include "encoding/datalog_verifier.h"
#include "ra/explorer.h"
#include "simplified/explorer.h"
#include "simplified/witness_min.h"

namespace rapar {

std::string Verdict::ToString() const {
  std::string out;
  switch (result) {
    case Result::kSafe:
      out = "SAFE";
      break;
    case Result::kUnsafe:
      out = "UNSAFE";
      break;
    case Result::kUnknown:
      out = "UNKNOWN";
      break;
  }
  out += StrCat(" (states=", states);
  if (guesses > 0) out += StrCat(", guesses=", guesses);
  if (tuples > 0) out += StrCat(", tuples=", tuples);
  if (env_thread_bound.has_value()) {
    out += StrCat(", env-thread bound=", *env_thread_bound);
  }
  out += ")";
  return out;
}

Verdict SafetyVerifier::Verify(const VerifierOptions& options) const {
  switch (options.backend) {
    case Backend::kSimplifiedExplorer:
      return RunSimplified(std::nullopt, options);
    case Backend::kDatalog:
      return RunDatalog(std::nullopt, options);
    case Backend::kConcrete:
      return RunConcrete(std::nullopt, options);
  }
  return {};
}

Verdict SafetyVerifier::VerifyMessageGeneration(
    VarId var, Value val, const VerifierOptions& options) const {
  const std::pair<VarId, Value> goal{var, val};
  switch (options.backend) {
    case Backend::kSimplifiedExplorer:
      return RunSimplified(goal, options);
    case Backend::kDatalog:
      return RunDatalog(goal, options);
    case Backend::kConcrete:
      return RunConcrete(goal, options);
  }
  return {};
}

Verdict SafetyVerifier::RunSimplified(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  SimplExplorer explorer(system_.simpl());
  SimplExplorerOptions opts;
  opts.goal = goal;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  SimplResult r = explorer.Check(opts);

  Verdict v;
  v.states = r.states;
  const bool hit = goal.has_value() ? r.goal_reached : r.violation;
  if (hit) {
    v.result = Verdict::Result::kUnsafe;
    // Strip saturation noise from the witness (bounded effort).
    if (r.witness.size() <= 400) {
      const WitnessProperty property =
          goal.has_value() ? GoalProperty(goal->first, goal->second)
                           : ViolationProperty();
      r.witness = MinimizeWitness(system_.simpl(), std::move(r.witness),
                                  property);
    }
    TraceRenderOptions render;
    render.elide_silent = true;
    v.witness = RenderTrace(system_.simpl(), r.witness, render);
    // §4.3 env-thread bound from the witness dependency graph.
    if (!r.witness.empty()) {
      std::map<std::uint32_t, int> final_reads;
      DepGraph g = DepGraph::Build(system_.simpl(), r.witness, &final_reads);
      long long total = 0;
      if (goal.has_value()) {
        const long long c = g.CostOfMessage(goal->first, goal->second);
        if (c >= 0) total = c;
      } else {
        // depend(violation): the reads of the asserting actor, costed.
        const bool env_actor =
            r.witness.back().actor == SimplStep::Actor::kEnv;
        total = g.CostOfReads(final_reads, env_actor);
      }
      v.env_thread_bound = total;
    }
  } else if (r.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict SafetyVerifier::RunDatalog(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  DatalogVerifierOptions opts;
  opts.goal_message = goal;
  opts.guess.max_guesses = options.max_guesses;
  DatalogVerdict dv = DatalogVerify(system_.simpl(), opts);
  Verdict v;
  v.guesses = dv.guesses;
  v.tuples = dv.total_tuples;
  if (dv.unsafe) {
    v.result = Verdict::Result::kUnsafe;
    v.witness = dv.witness_guess;
  } else if (dv.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict SafetyVerifier::RunConcrete(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  std::vector<const Cfa*> threads;
  for (int i = 0; i < options.concrete_env_threads; ++i) {
    threads.push_back(&system_.env_cfa());
  }
  for (std::size_t i = 0; i < system_.num_dis(); ++i) {
    threads.push_back(&system_.dis_cfa(i));
  }
  RaExplorer explorer(
      threads, system_.dom(), system_.vars().size(),
      {0, static_cast<std::size_t>(options.concrete_env_threads)});
  RaExplorerOptions opts;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  opts.stop_on_violation = !goal.has_value();
  RaResult r = explorer.CheckSafety(opts);

  Verdict v;
  v.states = r.states;
  bool hit;
  if (goal.has_value()) {
    hit = explorer.generated_messages().count(
              {goal->first.value(), goal->second}) > 0;
  } else {
    hit = r.violation;
  }
  if (hit) {
    v.result = Verdict::Result::kUnsafe;
    std::string w;
    for (const RaTraceStep& s : r.witness) {
      w += StrCat("t", s.thread, ": ", s.instr, "\n");
    }
    v.witness = std::move(w);
  } else if (r.exhaustive) {
    // Safe *for this instance size only* — parameterized safety does not
    // follow; callers must treat kSafe from the concrete backend as
    // instance-level.
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

}  // namespace rapar
