#include "core/verifier.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>

#include "analysis/prepass.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/trace_render.h"
#include "depgraph/dep_graph.h"
#include "encoding/datalog_verifier.h"
#include "ra/explorer.h"
#include "simplified/explorer.h"
#include "simplified/witness_min.h"
#include "tmai/tmai.h"

namespace rapar {

namespace {

namespace metric = obs::metric;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The system view a backend runs against: either the ParamSystem's own
// SimplSystem, or one rebuilt over pruned CFA copies owned here. unique_ptr
// storage keeps the Cfa addresses stable if the struct moves.
struct PreparedSystem {
  SimplSystem simpl;
  PrepassStats stats;
  std::unique_ptr<Cfa> env;
  std::vector<std::unique_ptr<Cfa>> dis;
};

PreparedSystem Prepare(const ParamSystem& system,
                       std::optional<std::pair<VarId, Value>> goal,
                       const VerifierOptions& options,
                       obs::Telemetry& telemetry) {
  obs::ScopedSpan span(options.obs.trace, "prepass");
  const auto start = std::chrono::steady_clock::now();
  PreparedSystem p;
  p.simpl = system.simpl();
  if (!options.enable_prepass) {
    telemetry.SetGauge(metric::kPhasePrepassMs, MsSince(start));
    return p;
  }
  PrepassResult r = RunPrepass(*p.simpl.env, p.simpl.dis,
                               goal.has_value() ? goal->first
                                                : VarId::Invalid());
  p.stats = r.stats;
  telemetry.SetCounter(metric::kPrepassDeadEdges,
                       r.stats.dead_edges_removed);
  telemetry.SetCounter(metric::kPrepassGuardsFolded, r.stats.guards_folded);
  telemetry.SetCounter(metric::kPrepassStoresSliced, r.stats.stores_sliced);
  telemetry.SetCounter(metric::kPrepassAssignsDropped,
                       r.stats.assigns_dropped);
  telemetry.SetGauge(metric::kPhasePrepassMs, MsSince(start));
  if (!r.stats.Any()) return p;  // nothing pruned: keep original CFAs
  p.env = std::make_unique<Cfa>(std::move(r.env));
  p.simpl.env = p.env.get();
  p.simpl.dis.clear();
  for (Cfa& d : r.dis) {
    p.dis.push_back(std::make_unique<Cfa>(std::move(d)));
    p.simpl.dis.push_back(p.dis.back().get());
  }
  return p;
}

void ExportDatalogStats(const DatalogVerdict& dv, obs::Telemetry& t) {
  t.SetCounter(metric::kGuesses, dv.guesses);
  t.SetCounter(metric::kQueries, dv.queries_evaluated);
  t.SetCounter(metric::kTuples, dv.total_tuples);
  t.SetCounter(metric::kRulesEmitted, dv.total_rules);
  t.SetCounter(metric::kRulesEvaluated, dv.total_rules_after);
  if (dv.budget_aborted_guess != kNoGuessIndex) {
    t.SetCounter(metric::kBudgetAbortedGuess, dv.budget_aborted_guess);
  }
  t.SetCounter(metric::kRuleFirings, dv.rule_firings);
  t.SetCounter(metric::kJoinAttempts, dv.join_attempts);
  t.SetCounter(metric::kIndexProbes, dv.index_probes);
  t.SetCounter(metric::kIndexHits, dv.index_hits);
  t.SetCounter(metric::kIndexBuilds, dv.index_builds);
  t.SetCounter(metric::kFactReuses, dv.fact_reuses);
  // Nonzero-gated (like kBudgetAbortedGuess) so default-mode envelopes —
  // and the golden JSON tests over them — are unchanged unless columnar
  // storage or delta solving actually ran.
  if (dv.merge_scans != 0) {
    t.SetCounter(metric::kMergeScans, dv.merge_scans);
  }
  if (dv.delta_retracts != 0) {
    t.SetCounter(metric::kDeltaRetracts, dv.delta_retracts);
  }
  if (dv.delta_asserts != 0) {
    t.SetCounter(metric::kDeltaAsserts, dv.delta_asserts);
  }
  if (dv.delta_reseeded_strata != 0) {
    t.SetCounter(metric::kDeltaReseededStrata, dv.delta_reseeded_strata);
  }
  const dlopt::DlOptStats& o = dv.dlopt;
  t.SetCounter(metric::kDlOptRulesBefore, o.rules_before);
  t.SetCounter(metric::kDlOptRulesAfter, o.rules_after);
  t.SetCounter(metric::kDlOptUnproductive, o.unproductive_removed);
  t.SetCounter(metric::kDlOptUnreachable, o.unreachable_removed);
  t.SetCounter(metric::kDlOptDemand, o.demand_removed);
  t.SetCounter(metric::kDlOptDuplicates, o.duplicates_removed);
  t.SetCounter(metric::kDlOptSubsumed, o.subsumed_removed);
  t.SetCounter(metric::kDlOptCopyAliased, o.copy_aliased_removed);
  t.SetCounter(metric::kDlOptPredsBefore, o.preds_before);
  t.SetCounter(metric::kDlOptPredsAfter, o.preds_after);
  // Shard/checkpoint metrics are activity-gated (like kMergeScans) so
  // default single-shard envelopes — and the goldens over them — are
  // byte-for-byte unchanged.
  if (dv.shard_count > 1) {
    t.SetCounter(metric::kShardIndex, dv.shard_index);
    t.SetCounter(metric::kShardCount, dv.shard_count);
    if (dv.terminating_index != kNoGuessIndex) {
      t.SetCounter(metric::kShardTerminatingIndex, dv.terminating_index);
    }
  }
  if (dv.resume_offset != 0) {
    t.SetCounter(metric::kCheckpointResumeOffset, dv.resume_offset);
  }
  if (dv.checkpoint_writes != 0) {
    t.SetCounter(metric::kCheckpointWrites, dv.checkpoint_writes);
  }
  const ParallelStats& p = dv.parallel;
  t.SetCounter(metric::kParThreads, p.threads);
  t.SetCounter(metric::kParBatches, p.batches);
  t.SetCounter(metric::kParSteals, p.steals);
  t.SetCounter(metric::kParSolves, p.solves);
  t.SetCounter(metric::kParDiscarded, p.discarded);
  t.SetCounter(metric::kParSkipped, p.skipped);
  if (p.early_exit_index != kNoGuessIndex) {
    t.SetCounter(metric::kParEarlyExitIndex, p.early_exit_index);
  }
}

}  // namespace

std::size_t Verdict::states() const {
  return telemetry.counter(metric::kStates);
}
std::size_t Verdict::guesses() const {
  return telemetry.counter(metric::kGuesses);
}
std::size_t Verdict::tuples() const {
  return telemetry.counter(metric::kTuples);
}
std::size_t Verdict::rule_firings() const {
  return telemetry.counter(metric::kRuleFirings);
}
std::size_t Verdict::join_attempts() const {
  return telemetry.counter(metric::kJoinAttempts);
}
std::size_t Verdict::index_probes() const {
  return telemetry.counter(metric::kIndexProbes);
}
std::size_t Verdict::index_hits() const {
  return telemetry.counter(metric::kIndexHits);
}
std::size_t Verdict::index_builds() const {
  return telemetry.counter(metric::kIndexBuilds);
}
std::size_t Verdict::fact_reuses() const {
  return telemetry.counter(metric::kFactReuses);
}
std::size_t Verdict::merge_scans() const {
  return telemetry.counter(metric::kMergeScans);
}

std::size_t Verdict::budget_aborted_guess() const {
  return telemetry.Has(metric::kBudgetAbortedGuess)
             ? static_cast<std::size_t>(
                   telemetry.counter(metric::kBudgetAbortedGuess))
             : kNoGuessIndex;
}

PrepassStats Verdict::prepass() const {
  PrepassStats s;
  s.dead_edges_removed = telemetry.counter(metric::kPrepassDeadEdges);
  s.guards_folded = telemetry.counter(metric::kPrepassGuardsFolded);
  s.stores_sliced = telemetry.counter(metric::kPrepassStoresSliced);
  s.assigns_dropped = telemetry.counter(metric::kPrepassAssignsDropped);
  return s;
}

::rapar::dlopt::DlOptStats Verdict::dlopt() const {
  ::rapar::dlopt::DlOptStats s;
  s.rules_before = telemetry.counter(metric::kDlOptRulesBefore);
  s.rules_after = telemetry.counter(metric::kDlOptRulesAfter);
  s.unproductive_removed = telemetry.counter(metric::kDlOptUnproductive);
  s.unreachable_removed = telemetry.counter(metric::kDlOptUnreachable);
  s.demand_removed = telemetry.counter(metric::kDlOptDemand);
  s.duplicates_removed = telemetry.counter(metric::kDlOptDuplicates);
  s.subsumed_removed = telemetry.counter(metric::kDlOptSubsumed);
  s.copy_aliased_removed = telemetry.counter(metric::kDlOptCopyAliased);
  s.preds_before = telemetry.counter(metric::kDlOptPredsBefore);
  s.preds_after = telemetry.counter(metric::kDlOptPredsAfter);
  return s;
}

ParallelStats Verdict::parallel() const {
  ParallelStats p;
  p.threads = telemetry.Has(metric::kParThreads)
                  ? static_cast<unsigned>(
                        telemetry.counter(metric::kParThreads))
                  : 1;
  p.batches = telemetry.counter(metric::kParBatches);
  p.steals = telemetry.counter(metric::kParSteals);
  p.solves = telemetry.counter(metric::kParSolves);
  p.discarded = telemetry.counter(metric::kParDiscarded);
  p.skipped = telemetry.counter(metric::kParSkipped);
  p.early_exit_index =
      telemetry.Has(metric::kParEarlyExitIndex)
          ? static_cast<std::size_t>(
                telemetry.counter(metric::kParEarlyExitIndex))
          : kNoGuessIndex;
  return p;
}

std::string Verdict::ToString() const {
  std::string out;
  switch (result) {
    case Result::kSafe:
      out = "SAFE";
      break;
    case Result::kUnsafe:
      out = "UNSAFE";
      break;
    case Result::kUnknown:
      out = "UNKNOWN";
      break;
  }
  out += StrCat(" (states=", states());
  if (guesses() > 0) out += StrCat(", guesses=", guesses());
  if (tuples() > 0) out += StrCat(", tuples=", tuples());
  if (env_thread_bound.has_value()) {
    out += StrCat(", env-thread bound=", *env_thread_bound);
  }
  out += ")";
  const PrepassStats pre = prepass();
  if (pre.Any()) out += StrCat(" [prepass: ", pre.ToString(), "]");
  const ::rapar::dlopt::DlOptStats opt = dlopt();
  if (opt.Any()) out += StrCat(" [dlopt: ", opt.ToString(), "]");
  if (rule_firings() > 0 || join_attempts() > 0) {
    out += StrCat(" [engine: firings=", rule_firings(),
                  ", joins=", join_attempts());
    if (index_builds() > 0) {
      out += StrCat(", index probes=", index_probes(),
                    " hits=", index_hits(), " builds=", index_builds());
    }
    if (fact_reuses() > 0) out += StrCat(", edb reuses=", fact_reuses());
    out += "]";
  }
  const ParallelStats par = parallel();
  if (par.Any()) {
    out += StrCat(" [parallel: threads=", par.threads,
                  ", batches=", par.batches,
                  ", steals=", par.steals,
                  ", solves=", par.solves);
    if (par.discarded > 0) {
      out += StrCat(", discarded=", par.discarded);
    }
    if (par.skipped > 0) out += StrCat(", skipped=", par.skipped);
    if (par.early_exit_index != kNoGuessIndex) {
      out += StrCat(", early exit at guess ", par.early_exit_index);
    }
    out += "]";
  }
  if (budget_aborted_guess() != kNoGuessIndex) {
    out += StrCat(" [budget aborted at guess ", budget_aborted_guess(), "]");
  }
  if (!stopped_phase.empty()) {
    out += StrCat(" [deadline hit in ", stopped_phase, "]");
  }
  return out;
}

// --- backend dispatch targets ----------------------------------------------
// The per-backend entry points behind SafetyVerifier::Run. Formerly the
// private RunSimplified/RunDatalog/... members; file-local free functions
// now that Run(goal, options) is the one public door.

namespace {

Verdict RunSimplified(const ParamSystem& system,
                      std::optional<std::pair<VarId, Value>> goal,
                      const VerifierOptions& options) {
  Verdict v;
  v.backend = "simplified";
  const PreparedSystem prep = Prepare(system, goal, options, v.telemetry);
  SimplExplorer explorer(prep.simpl);
  SimplExplorerOptions opts;
  opts.goal = goal;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  opts.cancel = options.cancel;
  SimplResult r;
  {
    obs::ScopedSpan span(options.obs.trace, "explore");
    const auto start = std::chrono::steady_clock::now();
    r = explorer.Check(opts);
    v.telemetry.SetGauge(metric::kPhaseSolveMs, MsSince(start));
  }

  v.telemetry.SetCounter(metric::kStates, r.states);
  if (r.budget_hit) v.stopped_phase = "explore";
  const bool hit = goal.has_value() ? r.goal_reached : r.violation;
  if (hit) {
    obs::ScopedSpan span(options.obs.trace, "witness");
    const auto start = std::chrono::steady_clock::now();
    v.result = Verdict::Result::kUnsafe;
    // Strip saturation noise from the witness (bounded effort).
    if (r.witness.size() <= 400) {
      const WitnessProperty property =
          goal.has_value() ? GoalProperty(goal->first, goal->second)
                           : ViolationProperty();
      r.witness =
          MinimizeWitness(prep.simpl, std::move(r.witness), property);
    }
    TraceRenderOptions render;
    render.elide_silent = true;
    v.witness = RenderTrace(prep.simpl, r.witness, render);
    // §4.3 env-thread bound from the witness dependency graph.
    if (!r.witness.empty()) {
      std::map<std::uint32_t, int> final_reads;
      DepGraph g = DepGraph::Build(prep.simpl, r.witness, &final_reads);
      long long total = 0;
      if (goal.has_value()) {
        const long long c = g.CostOfMessage(goal->first, goal->second);
        if (c >= 0) total = c;
      } else {
        // depend(violation): the reads of the asserting actor, costed.
        const bool env_actor =
            r.witness.back().actor == SimplStep::Actor::kEnv;
        total = g.CostOfReads(final_reads, env_actor);
      }
      v.env_thread_bound = total;
    }
    v.telemetry.SetGauge(metric::kPhaseWitnessMs, MsSince(start));
  } else if (r.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict RunDatalog(const ParamSystem& system,
                   std::optional<std::pair<VarId, Value>> goal,
                   const VerifierOptions& options) {
  Verdict v;
  v.backend = "datalog";
  const PreparedSystem prep = Prepare(system, goal, options, v.telemetry);
  DatalogVerifierOptions opts;
  opts.goal_message = goal;
  opts.guess.max_guesses = options.max_guesses;
  opts.guess.shard_index = options.datalog.shard_index;
  opts.guess.shard_count = options.datalog.shard_count;
  opts.guess.start_index = options.datalog.start_index;
  opts.resume_scanned_base = options.datalog.resume_scanned_base;
  opts.checkpoint_every = options.datalog.checkpoint_every;
  opts.checkpoint_sink = options.datalog.checkpoint_sink;
  opts.scan_limit = options.datalog.scan_limit;
  opts.enable_dlopt = options.datalog.enable_dlopt;
  opts.engine = options.datalog.engine;
  opts.threads = options.datalog.threads;
  opts.batch_size = options.datalog.batch_size;
  opts.warm_engine = options.datalog.warm_engine;
  opts.time_budget_ms = options.time_budget_ms;
  opts.trace = options.obs.trace;
  opts.cancel = options.cancel;
  DatalogVerdict dv;
  {
    obs::ScopedSpan span(options.obs.trace, "solve");
    const auto start = std::chrono::steady_clock::now();
    dv = DatalogVerify(prep.simpl, opts);
    v.telemetry.SetGauge(metric::kPhaseSolveMs, MsSince(start));
  }
  ExportDatalogStats(dv, v.telemetry);
  v.width_report = dv.width_report;
  if (dv.deadline_hit) {
    v.stopped_phase = "solve";
  } else if (dv.scan_limit_hit) {
    v.stopped_phase = "scan-limit";
  }
  if (dv.unsafe) {
    v.result = Verdict::Result::kUnsafe;
    v.witness = dv.witness_guess;
  } else if (dv.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict RunConcrete(const ParamSystem& system,
                    std::optional<std::pair<VarId, Value>> goal,
                    const VerifierOptions& options) {
  Verdict v;
  v.backend = "concrete";
  const PreparedSystem prep = Prepare(system, goal, options, v.telemetry);
  std::vector<const Cfa*> threads;
  for (int i = 0; i < options.concrete.env_threads; ++i) {
    threads.push_back(prep.simpl.env);
  }
  threads.insert(threads.end(), prep.simpl.dis.begin(),
                 prep.simpl.dis.end());
  RaExplorer explorer(
      threads, system.dom(), system.vars().size(),
      {0, static_cast<std::size_t>(options.concrete.env_threads)});
  RaExplorerOptions opts;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  opts.stop_on_violation = !goal.has_value();
  RaResult r;
  {
    obs::ScopedSpan span(options.obs.trace, "explore");
    const auto start = std::chrono::steady_clock::now();
    r = explorer.CheckSafety(opts);
    v.telemetry.SetGauge(metric::kPhaseSolveMs, MsSince(start));
  }

  v.telemetry.SetCounter(metric::kStates, r.states);
  if (r.budget_hit) v.stopped_phase = "explore";
  bool hit;
  if (goal.has_value()) {
    hit = explorer.generated_messages().count(
              {goal->first.value(), goal->second}) > 0;
  } else {
    hit = r.violation;
  }
  if (hit) {
    obs::ScopedSpan span(options.obs.trace, "witness");
    const auto start = std::chrono::steady_clock::now();
    v.result = Verdict::Result::kUnsafe;
    std::string w;
    for (const RaTraceStep& s : r.witness) {
      w += StrCat("t", s.thread, ": ", s.instr, "\n");
    }
    v.witness = std::move(w);
    v.telemetry.SetGauge(metric::kPhaseWitnessMs, MsSince(start));
  } else if (r.exhaustive) {
    // Safe *for this instance size only* — parameterized safety does not
    // follow; callers must treat kSafe from the concrete backend as
    // instance-level.
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict RunTmai(const ParamSystem& system,
                std::optional<std::pair<VarId, Value>> goal,
                const VerifierOptions& options) {
  Verdict v;
  v.backend = "tmai";
  const PreparedSystem prep = Prepare(system, goal, options, v.telemetry);
  const tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(prep.simpl);
  tmai::TmaiGoal tgoal;
  if (goal.has_value()) {
    tgoal.check_assert = false;
    tgoal.var = goal->first;
    tgoal.val = goal->second;
  }
  tmai::TmaiOptions topts;
  topts.max_iterations = options.tmai.max_iterations;
  topts.widening_delay = options.tmai.widening_delay;
  topts.value_set_limit = options.tmai.value_set_limit;
  topts.domain = options.tmai.domain;
  tmai::TmaiResult r;
  {
    obs::ScopedSpan span(options.obs.trace, "fixpoint");
    const auto start = std::chrono::steady_clock::now();
    r = tmai::RunTmai(tsys, tgoal, topts);
    v.telemetry.SetGauge(metric::kPhaseSolveMs, MsSince(start));
  }
  v.telemetry.SetCounter(metric::kTmaiIterations, r.iterations);
  v.telemetry.SetCounter(metric::kTmaiConverged, r.converged ? 1 : 0);
  v.telemetry.SetCounter(metric::kTmaiMaxDisjuncts, r.max_disjuncts_seen);
  v.telemetry.SetCounter(metric::kTmaiThreads, tsys.threads.size());
  // tmai.relational.* appear only when the relational engine actually ran
  // (requested directly, or as the kAuto retry after a small-set
  // kUnknown), keeping small-set envelopes byte-for-byte unchanged.
  if (r.domain_used == tmai::Domain::kRelational || r.strengthen_rounds > 0 ||
      r.pruned_reads > 0) {
    v.telemetry.SetCounter(metric::kTmaiRelationalRounds, r.strengthen_rounds);
    v.telemetry.SetCounter(metric::kTmaiRelationalPrunedReads,
                           r.pruned_reads);
  }
  v.certificate = r.certificate;
  if (v.certificate != nullptr) {
    v.telemetry.SetCounter(metric::kTmaiCertificate, 1);
  }
  if (r.safe) {
    v.result = Verdict::Result::kSafe;
  } else {
    // The abstraction reached the goal, or the fixpoint was cut short —
    // either way TMAI cannot conclude anything (it never answers unsafe).
    v.result = Verdict::Result::kUnknown;
    if (!r.converged) v.stopped_phase = "fixpoint";
  }
  return v;
}

Verdict RunPortfolio(const ParamSystem& system,
                     std::optional<std::pair<VarId, Value>> goal,
                     const VerifierOptions& options) {
  // Stage 0: TMAI inline. It finishes in microseconds on typical inputs,
  // so racing it buys nothing; a kSafe answer skips the race entirely.
  const auto tmai_start = std::chrono::steady_clock::now();
  VerifierOptions topts = options;
  topts.backend = Backend::kTmai;
  Verdict tv = RunTmai(system, goal, topts);
  const double tmai_ms = MsSince(tmai_start);
  if (tv.safe()) {
    tv.backend = "portfolio:tmai";
    tv.telemetry.SetCounter(metric::kPortfolioWinnerTmai, 1);
    tv.telemetry.SetGauge(metric::kPortfolioTmaiMs, tmai_ms);
    tv.telemetry.SetCounter(metric::kPortfolioCancelled, 0);
    return tv;
  }

  // Stage 1: race the two exact backends with a shared cancel. The first
  // definitive verdict (kSafe or kUnsafe — both backends are sound and
  // complete, so any definitive answer is correct) claims the win and
  // cancels the other; if neither is definitive the Datalog verdict is
  // reported so portfolio results stay bit-identical to --backend=datalog
  // on inconclusive runs.
  CancellationToken cancel;
  struct Entry {
    Verdict verdict;
    double ms = 0;
    bool done = false;
    std::string error;
  };
  constexpr int kSimpl = 0;
  constexpr int kData = 1;
  Entry entries[2];
  std::atomic<int> winner{-1};
  const auto race_start = std::chrono::steady_clock::now();

  auto race = [&](int slot) {
    Entry& e = entries[slot];
    try {
      VerifierOptions child = options;
      child.cancel = &cancel;
      // The recorder is not synchronized; raced backends run untraced.
      child.obs.trace = nullptr;
      if (slot == kSimpl) {
        child.backend = Backend::kSimplifiedExplorer;
        e.verdict = RunSimplified(system, goal, child);
      } else {
        child.backend = Backend::kDatalog;
        e.verdict = RunDatalog(system, goal, child);
      }
      e.ms = MsSince(race_start);
      e.done = true;
      if (e.verdict.result != Verdict::Result::kUnknown) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, slot)) {
          cancel.Cancel();
        }
      }
    } catch (const std::exception& ex) {
      e.ms = MsSince(race_start);
      e.error = ex.what();
    }
  };

  {
    ThreadPool pool(2);
    pool.Submit([&] { race(kSimpl); });
    pool.Submit([&] { race(kData); });
    pool.Wait();
  }

  int won = winner.load(std::memory_order_acquire);
  if (won < 0) {
    // No definitive answer. Fall back to the Datalog verdict (its
    // stopped_phase explains the truncation); if Datalog itself threw,
    // try the simplified one before giving up.
    if (entries[kData].done) {
      won = kData;
    } else if (entries[kSimpl].done) {
      won = kSimpl;
    } else {
      throw std::runtime_error(
          StrCat("portfolio: every backend failed (datalog: ",
                 entries[kData].error,
                 "; simplified: ", entries[kSimpl].error, ")"));
    }
  }

  Verdict v = std::move(entries[won].verdict);
  v.backend = won == kSimpl ? "portfolio:simplified" : "portfolio:datalog";
  obs::Telemetry& t = v.telemetry;
  t.SetCounter(metric::kPortfolioWinnerTmai, 0);
  t.SetCounter(metric::kPortfolioWinnerSimplified, won == kSimpl ? 1 : 0);
  t.SetCounter(metric::kPortfolioWinnerDatalog, won == kData ? 1 : 0);
  t.SetGauge(metric::kPortfolioTmaiMs, tmai_ms);
  if (entries[kSimpl].done) {
    t.SetGauge(metric::kPortfolioSimplifiedMs, entries[kSimpl].ms);
  }
  if (entries[kData].done) {
    t.SetGauge(metric::kPortfolioDatalogMs, entries[kData].ms);
  }
  // Losers that came back inconclusive after the winner fired were
  // (cooperatively) cancelled rather than genuinely stuck.
  std::size_t cancelled = 0;
  for (int slot : {kSimpl, kData}) {
    if (slot != won && entries[slot].done &&
        entries[slot].verdict.result == Verdict::Result::kUnknown) {
      ++cancelled;
    }
  }
  t.SetCounter(metric::kPortfolioCancelled, cancelled);
  return v;
}

}  // namespace

Verdict SafetyVerifier::Run(std::optional<std::pair<VarId, Value>> goal,
                            const VerifierOptions& options) const {
  const char* span_name = "verify";
  switch (options.backend) {
    case Backend::kSimplifiedExplorer:
      span_name = "verify:simplified";
      break;
    case Backend::kDatalog:
      span_name = "verify:datalog";
      break;
    case Backend::kConcrete:
      span_name = "verify:concrete";
      break;
    case Backend::kTmai:
      span_name = "verify:tmai";
      break;
    case Backend::kPortfolio:
      span_name = "verify:portfolio";
      break;
  }
  const auto start = std::chrono::steady_clock::now();
  Verdict v;
  {
    obs::ScopedSpan span(options.obs.trace, span_name);
    switch (options.backend) {
      case Backend::kSimplifiedExplorer:
        v = RunSimplified(system_, goal, options);
        break;
      case Backend::kDatalog:
        v = RunDatalog(system_, goal, options);
        break;
      case Backend::kConcrete:
        v = RunConcrete(system_, goal, options);
        break;
      case Backend::kTmai:
        v = RunTmai(system_, goal, options);
        break;
      case Backend::kPortfolio:
        v = RunPortfolio(system_, goal, options);
        break;
    }
  }
  v.telemetry.SetGauge(obs::metric::kPhaseTotalMs, MsSince(start));
  return v;
}

Verdict SafetyVerifier::Verify(const VerifierOptions& options) const {
  return Run(std::nullopt, options);
}

Verdict SafetyVerifier::VerifyMessageGeneration(
    VarId var, Value val, const VerifierOptions& options) const {
  return Run(std::pair<VarId, Value>{var, val}, options);
}

}  // namespace rapar
