#include "core/verifier.h"

#include <map>
#include <memory>

#include "analysis/prepass.h"
#include "common/strings.h"
#include "core/trace_render.h"
#include "depgraph/dep_graph.h"
#include "encoding/datalog_verifier.h"
#include "ra/explorer.h"
#include "simplified/explorer.h"
#include "simplified/witness_min.h"

namespace rapar {

namespace {

// The system view a backend runs against: either the ParamSystem's own
// SimplSystem, or one rebuilt over pruned CFA copies owned here. unique_ptr
// storage keeps the Cfa addresses stable if the struct moves.
struct PreparedSystem {
  SimplSystem simpl;
  PrepassStats stats;
  std::unique_ptr<Cfa> env;
  std::vector<std::unique_ptr<Cfa>> dis;
};

PreparedSystem Prepare(const ParamSystem& system,
                       std::optional<std::pair<VarId, Value>> goal,
                       bool enable_prepass) {
  PreparedSystem p;
  p.simpl = system.simpl();
  if (!enable_prepass) return p;
  PrepassResult r = RunPrepass(*p.simpl.env, p.simpl.dis,
                               goal.has_value() ? goal->first
                                                : VarId::Invalid());
  p.stats = r.stats;
  if (!r.stats.Any()) return p;  // nothing pruned: keep original CFAs
  p.env = std::make_unique<Cfa>(std::move(r.env));
  p.simpl.env = p.env.get();
  p.simpl.dis.clear();
  for (Cfa& d : r.dis) {
    p.dis.push_back(std::make_unique<Cfa>(std::move(d)));
    p.simpl.dis.push_back(p.dis.back().get());
  }
  return p;
}

}  // namespace

std::string Verdict::ToString() const {
  std::string out;
  switch (result) {
    case Result::kSafe:
      out = "SAFE";
      break;
    case Result::kUnsafe:
      out = "UNSAFE";
      break;
    case Result::kUnknown:
      out = "UNKNOWN";
      break;
  }
  out += StrCat(" (states=", states);
  if (guesses > 0) out += StrCat(", guesses=", guesses);
  if (tuples > 0) out += StrCat(", tuples=", tuples);
  if (env_thread_bound.has_value()) {
    out += StrCat(", env-thread bound=", *env_thread_bound);
  }
  out += ")";
  if (prepass.Any()) out += StrCat(" [prepass: ", prepass.ToString(), "]");
  if (dlopt.Any()) out += StrCat(" [dlopt: ", dlopt.ToString(), "]");
  if (rule_firings > 0 || join_attempts > 0) {
    out += StrCat(" [engine: firings=", rule_firings,
                  ", joins=", join_attempts);
    if (index_builds > 0) {
      out += StrCat(", index probes=", index_probes, " hits=", index_hits,
                    " builds=", index_builds);
    }
    if (fact_reuses > 0) out += StrCat(", edb reuses=", fact_reuses);
    out += "]";
  }
  if (parallel.Any()) {
    out += StrCat(" [parallel: threads=", parallel.threads,
                  ", batches=", parallel.batches,
                  ", steals=", parallel.steals,
                  ", solves=", parallel.solves);
    if (parallel.discarded > 0) {
      out += StrCat(", discarded=", parallel.discarded);
    }
    if (parallel.skipped > 0) out += StrCat(", skipped=", parallel.skipped);
    if (parallel.early_exit_index != kNoGuessIndex) {
      out += StrCat(", early exit at guess ", parallel.early_exit_index);
    }
    out += "]";
  }
  if (budget_aborted_guess != kNoGuessIndex) {
    out += StrCat(" [budget aborted at guess ", budget_aborted_guess, "]");
  }
  return out;
}

Verdict SafetyVerifier::Verify(const VerifierOptions& options) const {
  switch (options.backend) {
    case Backend::kSimplifiedExplorer:
      return RunSimplified(std::nullopt, options);
    case Backend::kDatalog:
      return RunDatalog(std::nullopt, options);
    case Backend::kConcrete:
      return RunConcrete(std::nullopt, options);
  }
  return {};
}

Verdict SafetyVerifier::VerifyMessageGeneration(
    VarId var, Value val, const VerifierOptions& options) const {
  const std::pair<VarId, Value> goal{var, val};
  switch (options.backend) {
    case Backend::kSimplifiedExplorer:
      return RunSimplified(goal, options);
    case Backend::kDatalog:
      return RunDatalog(goal, options);
    case Backend::kConcrete:
      return RunConcrete(goal, options);
  }
  return {};
}

Verdict SafetyVerifier::RunSimplified(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  const PreparedSystem prep =
      Prepare(system_, goal, options.enable_prepass);
  SimplExplorer explorer(prep.simpl);
  SimplExplorerOptions opts;
  opts.goal = goal;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  SimplResult r = explorer.Check(opts);

  Verdict v;
  v.states = r.states;
  v.prepass = prep.stats;
  const bool hit = goal.has_value() ? r.goal_reached : r.violation;
  if (hit) {
    v.result = Verdict::Result::kUnsafe;
    // Strip saturation noise from the witness (bounded effort).
    if (r.witness.size() <= 400) {
      const WitnessProperty property =
          goal.has_value() ? GoalProperty(goal->first, goal->second)
                           : ViolationProperty();
      r.witness =
          MinimizeWitness(prep.simpl, std::move(r.witness), property);
    }
    TraceRenderOptions render;
    render.elide_silent = true;
    v.witness = RenderTrace(prep.simpl, r.witness, render);
    // §4.3 env-thread bound from the witness dependency graph.
    if (!r.witness.empty()) {
      std::map<std::uint32_t, int> final_reads;
      DepGraph g = DepGraph::Build(prep.simpl, r.witness, &final_reads);
      long long total = 0;
      if (goal.has_value()) {
        const long long c = g.CostOfMessage(goal->first, goal->second);
        if (c >= 0) total = c;
      } else {
        // depend(violation): the reads of the asserting actor, costed.
        const bool env_actor =
            r.witness.back().actor == SimplStep::Actor::kEnv;
        total = g.CostOfReads(final_reads, env_actor);
      }
      v.env_thread_bound = total;
    }
  } else if (r.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict SafetyVerifier::RunDatalog(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  const PreparedSystem prep =
      Prepare(system_, goal, options.enable_prepass);
  DatalogVerifierOptions opts;
  opts.goal_message = goal;
  opts.guess.max_guesses = options.max_guesses;
  opts.enable_dlopt = options.enable_dlopt;
  opts.engine = options.engine;
  opts.threads = options.threads;
  DatalogVerdict dv = DatalogVerify(prep.simpl, opts);
  Verdict v;
  v.prepass = prep.stats;
  v.guesses = dv.guesses;
  v.tuples = dv.total_tuples;
  v.rule_firings = dv.rule_firings;
  v.join_attempts = dv.join_attempts;
  v.index_probes = dv.index_probes;
  v.index_hits = dv.index_hits;
  v.index_builds = dv.index_builds;
  v.fact_reuses = dv.fact_reuses;
  v.budget_aborted_guess = dv.budget_aborted_guess;
  v.dlopt = dv.dlopt;
  v.width_report = dv.width_report;
  v.parallel = dv.parallel;
  if (dv.unsafe) {
    v.result = Verdict::Result::kUnsafe;
    v.witness = dv.witness_guess;
  } else if (dv.exhaustive) {
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

Verdict SafetyVerifier::RunConcrete(
    std::optional<std::pair<VarId, Value>> goal,
    const VerifierOptions& options) const {
  const PreparedSystem prep =
      Prepare(system_, goal, options.enable_prepass);
  std::vector<const Cfa*> threads;
  for (int i = 0; i < options.concrete_env_threads; ++i) {
    threads.push_back(prep.simpl.env);
  }
  threads.insert(threads.end(), prep.simpl.dis.begin(),
                 prep.simpl.dis.end());
  RaExplorer explorer(
      threads, system_.dom(), system_.vars().size(),
      {0, static_cast<std::size_t>(options.concrete_env_threads)});
  RaExplorerOptions opts;
  opts.max_states = options.max_states;
  opts.max_depth = options.max_depth;
  opts.time_budget_ms = options.time_budget_ms;
  opts.stop_on_violation = !goal.has_value();
  RaResult r = explorer.CheckSafety(opts);

  Verdict v;
  v.states = r.states;
  v.prepass = prep.stats;
  bool hit;
  if (goal.has_value()) {
    hit = explorer.generated_messages().count(
              {goal->first.value(), goal->second}) > 0;
  } else {
    hit = r.violation;
  }
  if (hit) {
    v.result = Verdict::Result::kUnsafe;
    std::string w;
    for (const RaTraceStep& s : r.witness) {
      w += StrCat("t", s.thread, ": ", s.instr, "\n");
    }
    v.witness = std::move(w);
  } else if (r.exhaustive) {
    // Safe *for this instance size only* — parameterized safety does not
    // follow; callers must treat kSafe from the concrete backend as
    // instance-level.
    v.result = Verdict::Result::kSafe;
  } else {
    v.result = Verdict::Result::kUnknown;
  }
  return v;
}

}  // namespace rapar
