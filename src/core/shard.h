// Multi-process guess-space sharding: checkpoint file IO, the shard
// subprocess runner, and the envelope merge (DESIGN.md §14).
//
// The orchestrator behind `rapar_cli verify --shards=N`: spawn one
// subprocess per shard (each scanning its residue class of the guess
// enumeration with `--shard-index=i`), capture the per-shard
// `--format=json` envelopes, and merge them under the
// first-terminating-event-wins rule into one envelope with a "shard"
// section. Merge rule (mirrors the in-process parallel driver):
//
//   * The winning shard is the one with the minimum *global*
//     terminating index (`shard.terminating_index` in its telemetry).
//     Stride sharding partitions the enumeration order, so the minimum
//     over the per-shard first terminating events IS the global first
//     terminating event — the merged verdict, witness and guess count
//     (terminating index + 1) are bit-identical to a single-process run.
//   * No terminating event anywhere: all shards safe-exhaustive merges
//     to safe with guesses = the summed per-shard counts (the residue
//     classes partition the order, so the sum is the full enumeration);
//     any truncated shard (deadline/cancel/scan-limit) degrades the
//     merge to unknown.
//   * Remaining telemetry counters sum across shards — they describe
//     work actually performed, which (unlike the verdict) exceeds the
//     single-process prefix because shards do not cancel each other.
#ifndef RAPAR_CORE_SHARD_H_
#define RAPAR_CORE_SHARD_H_

#include <string>
#include <vector>

#include "common/expected.h"
#include "encoding/dis_guess.h"

namespace rapar {

// --- checkpoint files -------------------------------------------------------

// Reads and validates a checkpoint file (CursorCheckpoint::FromJson).
Expected<CursorCheckpoint> LoadCheckpointFile(const std::string& path);

// Writes atomically: to `path`.tmp, fsync, then rename over `path` — a
// kill mid-write leaves the previous checkpoint intact, never a torn
// one. Returns an error message on IO failure.
Expected<bool> SaveCheckpointFile(const std::string& path,
                                  const CursorCheckpoint& cp);

// --- subprocess runner ------------------------------------------------------

// Absolute path of the running executable (/proc/self/exe), empty when
// unavailable.
std::string SelfExecutablePath();

struct ShardProcessResult {
  int exit_code = -1;        // wait status; -1 = abnormal termination
  std::string stdout_text;   // captured stdout (the JSON envelope)
};

// Spawns one subprocess per argv vector (fork/execv; argv[0] is the
// executable path), streams each child's stdout into memory on a reader
// thread, and waits for all of them. stderr is inherited so shard
// diagnostics surface directly. Fails only on spawn/plumbing errors;
// per-child exit codes are reported, not judged.
Expected<std::vector<ShardProcessResult>> RunShardProcesses(
    const std::vector<std::vector<std::string>>& argvs);

// --- envelope merge ---------------------------------------------------------

struct MergedShardEnvelope {
  std::string envelope_json;  // merged verify envelope (trailing '\n')
  std::string verdict;        // "safe", "unsafe" or "unknown"
  int exit_code = 2;          // the merged verdict's CLI exit code
};

// Merges per-shard verify envelopes (the `--format=json` output of each
// shard subprocess, any shard order) under first-terminating-event-wins.
// The merged envelope keeps shard 0's key order and metadata (command,
// system signature, options echo, width report — guess 0 always lives in
// shard 0, so the width report matches the single-process run), replaces
// verdict/witness/telemetry per the merge rule, and swaps the per-shard
// "shard" section for an orchestrator one:
//
//   "shard": {"count": N, "winner": i | null,
//             "per_shard": [{"index", "verdict", "guesses", "solves",
//                            "steals", "solve_ms", "checkpoint_writes",
//                            "terminating_index"}, ...]}
//
// Errors on malformed envelopes, inconsistent shard counts, or duplicate
// shard indices.
Expected<MergedShardEnvelope> MergeShardEnvelopes(
    const std::vector<std::string>& envelopes, bool pretty);

}  // namespace rapar

#endif  // RAPAR_CORE_SHARD_H_
