#include "core/serve.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/prepass.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "core/param_system.h"
#include "core/result_json.h"
#include "core/verifier.h"
#include "datalog/engine.h"
#include "lang/parser.h"
#include "obs/telemetry.h"
#include "tmai/certcheck.h"
#include "tmai/tmai.h"

namespace rapar::serve {

namespace {

// --- request decoding -------------------------------------------------------

// One decoded request. `error` non-empty means decoding failed and only
// `id_json` is meaningful.
struct Request {
  std::string id_json;  // pre-rendered echo; empty = no id
  bool mg = false;
  std::string env_text;
  std::vector<std::string> dis_texts;
  std::string goal_var;
  long long goal_val = -1;
  int unroll = 0;
  VerifierOptions vopts;
  std::string backend_name;      // normalized, for the fingerprint
  std::string tmai_domain_name;  // normalized, for the fingerprint
  std::string error;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

const JsonValue* FindMember(const JsonValue& obj, const char* key) {
  return obj.Find(key);
}

// Integer member with type checking; leaves *out untouched when absent.
bool GetInt(const JsonValue& obj, const char* key, long long* out,
            std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) return true;
  if (!v->is_number() || !v->number_is_int) {
    *error = std::string("field '") + key + "' must be an integer";
    return false;
  }
  *out = v->integer;
  return true;
}

// Ceiling for option knobs that narrow to int downstream: far beyond any
// operational setting, comfortably inside int32.
constexpr long long kKnobMax = 1'000'000'000;

// GetInt plus a [min, max] check: untrusted clients must get a decode
// error on out-of-range values, never a silently wrapped narrow cast.
bool GetIntRange(const JsonValue& obj, const char* key, long long* out,
                 long long min, long long max, std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) return true;
  if (!v->is_number() || !v->number_is_int) {
    *error = std::string("field '") + key + "' must be an integer";
    return false;
  }
  if (v->integer < min || v->integer > max) {
    *error = std::string("field '") + key + "' out of range [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = v->integer;
  return true;
}

bool GetBool(const JsonValue& obj, const char* key, bool* out,
             std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    *error = std::string("field '") + key + "' must be a boolean";
    return false;
  }
  *out = v->boolean;
  return true;
}

bool GetString(const JsonValue& obj, const char* key, std::string* out,
               std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v->string;
  return true;
}

// Decodes the request object into a Request. Defaults mirror the CLI
// (30s budget, simplified backend) except datalog.threads, which
// defaults to 1: the daemon parallelizes *across* requests, so each
// request runs the serial loop on a warm per-worker engine unless the
// client asks otherwise.
Request DecodeRequest(const JsonValue& doc) {
  Request req;
  req.vopts.time_budget_ms = 30'000;
  req.vopts.datalog.threads = 1;

  if (const JsonValue* id = doc.Find("id")) {
    JsonWriter w;
    WriteJsonValue(*id, &w);
    req.id_json = w.TakeString();
  }
  if (!doc.is_object()) {
    req.error = "request must be a JSON object";
    return req;
  }

  std::string command;
  if (!GetString(doc, "command", &command, &req.error)) return req;
  if (command == "mg") {
    req.mg = true;
  } else if (command != "verify") {
    req.error = command.empty() ? "missing \"command\" (verify|mg)"
                                : "unknown command \"" + command + "\"";
    return req;
  }

  // Program sources: inline text wins over file paths.
  std::string env_file;
  if (!GetString(doc, "env", &req.env_text, &req.error)) return req;
  if (!GetString(doc, "env_file", &env_file, &req.error)) return req;
  if (req.env_text.empty() && !env_file.empty() &&
      !ReadFile(env_file, &req.env_text)) {
    req.error = "cannot read env file '" + env_file + "'";
    return req;
  }
  if (req.env_text.empty()) {
    req.error = "missing env program (\"env\" text or \"env_file\" path)";
    return req;
  }
  if (const JsonValue* dis = doc.Find("dis")) {
    if (!dis->is_array()) {
      req.error = "field 'dis' must be an array of program texts";
      return req;
    }
    for (const JsonValue& item : dis->items) {
      if (!item.is_string()) {
        req.error = "field 'dis' must be an array of program texts";
        return req;
      }
      req.dis_texts.push_back(item.string);
    }
  }
  if (const JsonValue* dis_files = doc.Find("dis_files")) {
    if (!dis_files->is_array()) {
      req.error = "field 'dis_files' must be an array of paths";
      return req;
    }
    for (const JsonValue& item : dis_files->items) {
      std::string text;
      if (!item.is_string() || !ReadFile(item.string, &text)) {
        req.error = "cannot read dis file" +
                    (item.is_string() ? " '" + item.string + "'" : "");
        return req;
      }
      req.dis_texts.push_back(std::move(text));
    }
  }

  if (!GetString(doc, "var", &req.goal_var, &req.error)) return req;
  if (!GetIntRange(doc, "val", &req.goal_val, 0, kKnobMax, &req.error)) {
    return req;
  }
  if (req.mg && (req.goal_var.empty() || req.goal_val < 0)) {
    req.error = "mg requires \"var\" (declared) and \"val\" >= 0";
    return req;
  }

  // Options object: same knobs the CLI flag table exposes. Fields that
  // narrow to int (or otherwise feed fixed-width knobs) are
  // range-checked here so an out-of-range value answers a decode error.
  req.backend_name = "simplified";
  req.tmai_domain_name = "auto";
  std::string engine_storage = "hash";
  long long threads = 1, batch_size = 32, env_threads = 2;
  long long max_states = -1, max_depth = -1, max_guesses = -1;
  long long time_budget_ms = 30'000, unroll = 0;
  long long tmai_iters = 64, tmai_delay = 8, tmai_vset = 16;
  if (const JsonValue* opts = doc.Find("options")) {
    if (!opts->is_object()) {
      req.error = "field 'options' must be an object";
      return req;
    }
    if (!GetString(*opts, "backend", &req.backend_name, &req.error) ||
        !GetString(*opts, "tmai_domain", &req.tmai_domain_name, &req.error) ||
        !GetBool(*opts, "enable_prepass", &req.vopts.enable_prepass,
                 &req.error) ||
        !GetBool(*opts, "enable_dlopt", &req.vopts.datalog.enable_dlopt,
                 &req.error) ||
        !GetString(*opts, "engine_storage", &engine_storage, &req.error) ||
        !GetBool(*opts, "delta_solve",
                 &req.vopts.datalog.engine.delta_solve, &req.error) ||
        !GetIntRange(*opts, "threads", &threads, -1, 1 << 16, &req.error) ||
        !GetIntRange(*opts, "batch_size", &batch_size, 0, 1 << 24,
                     &req.error) ||
        !GetIntRange(*opts, "env_threads", &env_threads, 1, 4096,
                     &req.error) ||
        !GetIntRange(*opts, "unroll", &unroll, 0, 1'000'000, &req.error) ||
        !GetIntRange(*opts, "tmai_max_iterations", &tmai_iters, 0, kKnobMax,
                     &req.error) ||
        !GetIntRange(*opts, "tmai_widening_delay", &tmai_delay, 0, kKnobMax,
                     &req.error) ||
        !GetIntRange(*opts, "tmai_value_set_limit", &tmai_vset, 0, kKnobMax,
                     &req.error) ||
        !GetInt(*opts, "max_states", &max_states, &req.error) ||
        !GetIntRange(*opts, "max_depth", &max_depth, -1, kKnobMax,
                     &req.error) ||
        !GetInt(*opts, "time_budget_ms", &time_budget_ms, &req.error) ||
        !GetInt(*opts, "max_guesses", &max_guesses, &req.error)) {
      return req;
    }
  }

  if (req.backend_name == "simplified") {
    req.vopts.backend = Backend::kSimplifiedExplorer;
  } else if (req.backend_name == "datalog") {
    req.vopts.backend = Backend::kDatalog;
  } else if (req.backend_name == "concrete") {
    req.vopts.backend = Backend::kConcrete;
  } else if (req.backend_name == "tmai") {
    req.vopts.backend = Backend::kTmai;
  } else if (req.backend_name == "portfolio") {
    req.vopts.backend = Backend::kPortfolio;
  } else {
    req.error = "unknown backend \"" + req.backend_name + "\"";
    return req;
  }
  if (req.tmai_domain_name == "smallset") {
    req.vopts.tmai.domain = tmai::Domain::kSmallSet;
  } else if (req.tmai_domain_name == "relational") {
    req.vopts.tmai.domain = tmai::Domain::kRelational;
  } else if (req.tmai_domain_name == "auto") {
    req.vopts.tmai.domain = tmai::Domain::kAuto;
  } else {
    req.error = "unknown TMAI domain \"" + req.tmai_domain_name + "\"";
    return req;
  }
  if (engine_storage == "hash") {
    req.vopts.datalog.engine.storage = dl::StorageMode::kHash;
  } else if (engine_storage == "columnar") {
    req.vopts.datalog.engine.storage = dl::StorageMode::kColumnar;
  } else if (engine_storage == "auto") {
    req.vopts.datalog.engine.storage = dl::StorageMode::kAuto;
  } else {
    req.error = "unknown engine storage \"" + engine_storage + "\"";
    return req;
  }
  req.vopts.datalog.threads =
      threads < 0 ? 0u : static_cast<unsigned>(threads);
  req.vopts.datalog.batch_size =
      batch_size <= 0 ? 1 : static_cast<std::size_t>(batch_size);
  req.vopts.concrete.env_threads = static_cast<int>(env_threads);
  req.vopts.tmai.max_iterations = static_cast<int>(tmai_iters);
  req.vopts.tmai.widening_delay = static_cast<int>(tmai_delay);
  req.vopts.tmai.value_set_limit = static_cast<int>(tmai_vset);
  if (max_states >= 0) {
    req.vopts.max_states = static_cast<std::size_t>(max_states);
  }
  if (max_depth >= 0) req.vopts.max_depth = static_cast<int>(max_depth);
  req.vopts.time_budget_ms = time_budget_ms;
  if (max_guesses >= 0) {
    req.vopts.max_guesses = static_cast<std::size_t>(max_guesses);
  }
  req.unroll = static_cast<int>(unroll);
  return req;
}

Expected<ParamSystem> BuildSystem(const Request& req) {
  Expected<Program> env = ParseProgram(req.env_text);
  if (!env.ok()) {
    return Expected<ParamSystem>::Error("env: " + env.error());
  }
  ParamSystem::Builder builder;
  builder.Env(std::move(env).value()).UnrollDis(req.unroll);
  for (std::size_t i = 0; i < req.dis_texts.size(); ++i) {
    Expected<Program> dis = ParseProgram(req.dis_texts[i]);
    if (!dis.ok()) {
      return Expected<ParamSystem>::Error("dis[" + std::to_string(i) +
                                          "]: " + dis.error());
    }
    builder.Dis(std::move(dis).value());
  }
  return builder.Build();
}

// --- fingerprinting ---------------------------------------------------------

// The canonical normalization of a request: every input the backends can
// observe, in a fixed order. Two requests get the same canonical string
// exactly when they run the same verification — the pretty-printed
// programs (post-unroll, so `unroll` is captured structurally as well as
// textually), the class signature, the goal, and every option field that
// reaches a backend. datalog.threads and batch_size are deliberately
// excluded: the verdict is thread-count independent by the determinism
// rule (encoding/datalog_verifier.h), so scheduling knobs must not
// fragment the cache.
std::string CanonicalRequest(const Request& req, const ParamSystem& sys) {
  const VerifierOptions& vo = req.vopts;
  std::string s;
  s.reserve(512);
  s += "rapar-fingerprint-v1\n";
  s += "command=";
  s += req.mg ? "mg" : "verify";
  s += '\n';
  if (req.mg) {
    s += "goal=" + req.goal_var + ':' + std::to_string(req.goal_val) + '\n';
  }
  s += "backend=" + req.backend_name + '\n';
  s += "prepass=";
  s += vo.enable_prepass ? '1' : '0';
  s += "\ndlopt=";
  s += vo.datalog.enable_dlopt ? '1' : '0';
  // Only the three legacy engine toggles participate. engine.storage and
  // engine.delta_solve are deliberately EXCLUDED (like datalog.threads):
  // they are verdict-invariant evaluation strategies, so requests that
  // differ only in those knobs must share one cache entry.
  s += "\nengine=";
  s += vo.datalog.engine.use_index ? '1' : '0';
  s += vo.datalog.engine.reorder_joins ? '1' : '0';
  s += vo.datalog.engine.reuse_facts ? '1' : '0';
  s += "\ntmai=" + req.tmai_domain_name + ':' +
       std::to_string(vo.tmai.max_iterations) + ':' +
       std::to_string(vo.tmai.widening_delay) + ':' +
       std::to_string(vo.tmai.value_set_limit) + '\n';
  s += "limits=" + std::to_string(vo.max_states) + ':' +
       std::to_string(vo.max_depth) + ':' +
       std::to_string(vo.time_budget_ms) + ':' +
       std::to_string(vo.max_guesses) + '\n';
  s += "env_threads=" + std::to_string(vo.concrete.env_threads) + '\n';
  s += "unroll=" + std::to_string(req.unroll) + '\n';
  s += "signature=" + sys.Signature() + '\n';
  s += "env:\n" + sys.env_program().ToString();
  for (const Program& dis : sys.dis_programs()) {
    s += "dis:\n" + dis.ToString();
  }
  return s;
}

// 128-bit display digest of the canonical string (two independent
// FNV-1a lanes, SplitMix64-finalized). The cache is keyed by the full
// canonical string, so the digest is an address label, not a
// correctness-critical hash.
std::string FingerprintDigest(std::string_view canonical) {
  std::uint64_t a = 0xcbf29ce484222325ull;
  std::uint64_t b = 0x9e3779b97f4a7c15ull;
  for (const unsigned char c : canonical) {
    a = (a ^ c) * 0x100000001b3ull;
    b = (b ^ (c + 0x9dull)) * 0x100000001b3ull;
  }
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(SplitMix64(a)),
                static_cast<unsigned long long>(SplitMix64(b)));
  return buf;
}

// One-line error envelope; the daemon answers it and keeps serving.
std::string ErrorLine(const std::string& id_json, const std::string& message,
                      bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Key("schema_version").Int(kResultSchemaVersion);
  w.Key("tool").String("rapar");
  w.Key("command").String("error");
  if (!id_json.empty()) w.Key("id").Raw(id_json);
  w.Key("error").String(message);
  w.Key("exit_code").Int(3);
  w.EndObject();
  return w.TakeString();
}

// Re-validates a memoized certificate against the freshly parsed system,
// replicating the verifier's preparation (same prepass, same goal-var
// protection — mirrors rapar_cli certcheck).
bool RevalidateCertificate(const ParamSystem& sys, bool ran_prepass,
                           const tmai::Certificate& cert) {
  SimplSystem simpl = sys.simpl();
  std::unique_ptr<Cfa> env_owned;
  std::vector<std::unique_ptr<Cfa>> dis_owned;
  if (ran_prepass) {
    const VarId protect =
        cert.check_assert ? VarId::Invalid() : VarId(cert.goal_var);
    PrepassResult pre = RunPrepass(*simpl.env, simpl.dis, protect);
    if (pre.stats.Any()) {
      env_owned = std::make_unique<Cfa>(std::move(pre.env));
      simpl.env = env_owned.get();
      simpl.dis.clear();
      for (Cfa& d : pre.dis) {
        dis_owned.push_back(std::make_unique<Cfa>(std::move(d)));
        simpl.dis.push_back(dis_owned.back().get());
      }
    }
  }
  const tmai::TmaiSystem tsys = tmai::TmaiSystem::FromSimpl(simpl);
  return tmai::CheckCertificate(tsys, cert).valid;
}

// A verdict is memoizable only when it is a fact about the program:
// safe/unsafe with no truncation. An unknown (deadline, budget, cap) is
// wall-clock state and must be recomputed.
bool Definitive(const Verdict& v) {
  return v.result != Verdict::Result::kUnknown && v.stopped_phase.empty();
}

// Which warm-engine slot the calling thread owns. ThreadPool's worker
// index is a process-wide thread_local, so a worker of some *other* pool
// would alias our slots; Run()'s task wrapper tags its own workers with
// the session they serve instead, and everyone else shares slot 0.
thread_local const void* tl_serve_session = nullptr;
thread_local int tl_serve_slot = 0;

}  // namespace

// --- session ----------------------------------------------------------------

struct ServeSession::Impl {
  explicit Impl(const ServeOptions& opts) : options(opts) {
    unsigned threads = opts.threads;
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    // One warm engine per pool worker, plus slot 0 for calls from
    // non-worker threads (serialized by slot0_m).
    engines.resize((pool != nullptr ? pool->size() : 0) + 1);
  }

  struct CacheEntry {
    std::string key;  // canonical request (owns the map's key view)
    std::string digest;
    std::string command;
    std::string signature;
    Verdict verdict;        // pre-stamping: no cache.*/serve.* counters
    VerifierOptions vopts;  // borrowed pointers cleared
    std::size_t bytes = 0;
  };

  // Single-flight marker: an identical request is already running the
  // pipeline; twins wait for it instead of duplicating the work, then
  // re-probe the cache (a definitive result lands there; a
  // non-memoizable one makes the waiter run itself).
  struct Inflight {
    std::condition_variable cv;
    bool done = false;  // guarded by cache_m
  };

  // Probes the cache for `key`. On a hit, refreshes LRU order and copies
  // the entry to *out. On a miss, registers this caller as the key's
  // single flight (waiting out any current flight first) and returns
  // false — the caller must run the pipeline and call FinishFlight.
  bool LookupOrBeginFlight(const std::string& key, CacheEntry* out,
                           std::shared_ptr<Inflight>* flight) {
    std::unique_lock<std::mutex> lock(cache_m);
    for (;;) {
      auto it = cache_index.find(key);
      if (it != cache_index.end()) {
        lru.splice(lru.begin(), lru, it->second);
        *out = *it->second;
        return true;
      }
      auto fit = inflight.find(key);
      if (fit == inflight.end()) break;
      const std::shared_ptr<Inflight> running = fit->second;
      running->cv.wait(lock, [&] { return running->done; });
      // Loop: the twin's definitive verdict is in the cache now; a
      // non-definitive one leaves a miss and we run it ourselves.
    }
    *flight = std::make_shared<Inflight>();
    inflight.emplace(key, *flight);
    return false;
  }

  // Ends `key`'s flight, memoizing `entry` when provided, and wakes the
  // waiting twins.
  void FinishFlight(const std::string& key,
                    const std::shared_ptr<Inflight>& flight,
                    std::optional<CacheEntry> entry) {
    std::lock_guard<std::mutex> lock(cache_m);
    if (entry.has_value() && cache_index.count(entry->key) == 0) {
      cache_bytes += entry->bytes;
      lru.push_front(std::move(*entry));
      cache_index.emplace(lru.front().key, lru.begin());
      while (lru.size() > options.cache_entries ||
             (cache_bytes > options.cache_bytes && lru.size() > 1)) {
        const CacheEntry& victim = lru.back();
        cache_bytes -= victim.bytes;
        cache_index.erase(victim.key);
        lru.pop_back();
        evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    inflight.erase(key);
    flight->done = true;
    flight->cv.notify_all();
  }

  void Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(cache_m);
    auto it = cache_index.find(key);
    if (it == cache_index.end()) return;
    cache_bytes -= it->second->bytes;
    lru.erase(it->second);
    cache_index.erase(it);
    evictions.fetch_add(1, std::memory_order_relaxed);
  }

  dl::Engine* WarmEngine(int slot) {
    return &engines[static_cast<std::size_t>(slot)];
  }

  ServeOptions options;
  std::unique_ptr<ThreadPool> pool;
  std::vector<dl::Engine> engines;
  std::mutex slot0_m;  // serializes non-worker use of engines[0]

  std::mutex cache_m;
  std::list<CacheEntry> lru;  // front = most recently used
  std::unordered_map<std::string_view, std::list<CacheEntry>::iterator>
      cache_index;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
  std::size_t cache_bytes = 0;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
};

ServeSession::ServeSession(const ServeOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

ServeSession::~ServeSession() = default;

CacheStats ServeSession::cache_stats() const {
  CacheStats cs;
  cs.hits = impl_->hits.load(std::memory_order_relaxed);
  cs.misses = impl_->misses.load(std::memory_order_relaxed);
  cs.evictions = impl_->evictions.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->cache_m);
  cs.bytes = impl_->cache_bytes;
  cs.entries = impl_->lru.size();
  return cs;
}

std::string ServeSession::HandleLine(std::string_view line) {
  // The daemon's contract is that errors never kill the stream: any
  // exception the pipeline lets escape (backend throw, allocation
  // failure, writer misuse) becomes a one-line error envelope, exactly
  // like a malformed request.
  try {
    return HandleLineImpl(line);
  } catch (const std::exception& e) {
    impl_->errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine("", std::string("internal error: ") + e.what(),
                     impl_->options.pretty);
  } catch (...) {
    impl_->errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine("", "internal error", impl_->options.pretty);
  }
}

std::string ServeSession::HandleLineImpl(std::string_view line) {
  Impl& im = *impl_;
  im.requests.fetch_add(1, std::memory_order_relaxed);
  const bool pretty = im.options.pretty;

  Expected<JsonValue> doc = ParseJson(line);
  if (!doc.ok()) {
    im.errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine("", "invalid request JSON: " + doc.error(), pretty);
  }

  // --- batch: {"requests":[...]} answered as {"responses":[...]} ---
  // Detected on the top-level member, so plain request lines take the
  // single-request path below byte-for-byte unchanged.
  if (doc.value().is_object()) {
    if (const JsonValue* reqs = doc.value().Find("requests")) {
      std::string batch_id;
      if (const JsonValue* id = doc.value().Find("id")) {
        JsonWriter w;
        WriteJsonValue(*id, &w);
        batch_id = w.TakeString();
      }
      if (!reqs->is_array() || reqs->items.empty()) {
        im.errors.fetch_add(1, std::memory_order_relaxed);
        return ErrorLine(batch_id,
                         "field 'requests' must be a non-empty array",
                         pretty);
      }
      // The line was counted once above; count the remaining elements so
      // serve.requests reflects verifications asked, not stdin lines.
      im.requests.fetch_add(reqs->items.size() - 1,
                            std::memory_order_relaxed);
      JsonWriter w(pretty);
      w.BeginObject();
      if (!batch_id.empty()) w.Key("id").Raw(batch_id);
      w.Key("responses").BeginArray();
      for (const JsonValue& item : reqs->items) {
        // Same never-kill-the-stream contract per element as HandleLine
        // has per line: one failing element answers its own error
        // envelope and the rest of the batch still runs.
        std::string resp;
        try {
          resp = HandleRequestDoc(item);
        } catch (const std::exception& e) {
          im.errors.fetch_add(1, std::memory_order_relaxed);
          resp = ErrorLine("", std::string("internal error: ") + e.what(),
                           pretty);
        } catch (...) {
          im.errors.fetch_add(1, std::memory_order_relaxed);
          resp = ErrorLine("", "internal error", pretty);
        }
        w.Raw(resp);
      }
      w.EndArray();
      w.EndObject();
      return w.TakeString();
    }
  }
  return HandleRequestDoc(doc.value());
}

std::string ServeSession::HandleRequestDoc(const JsonValue& doc) {
  Impl& im = *impl_;
  const bool pretty = im.options.pretty;
  Request req = DecodeRequest(doc);
  if (!req.error.empty()) {
    im.errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine(req.id_json, req.error, pretty);
  }

  const auto parse_start = std::chrono::steady_clock::now();
  Expected<ParamSystem> sys = BuildSystem(req);
  if (!sys.ok()) {
    im.errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine(req.id_json, sys.error(), pretty);
  }
  std::optional<std::pair<VarId, Value>> goal;
  if (req.mg) {
    const VarId var = sys.value().vars().Find(req.goal_var);
    if (!var.valid()) {
      im.errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorLine(req.id_json,
                       "unknown variable '" + req.goal_var + "'", pretty);
    }
    goal = {var, static_cast<Value>(req.goal_val)};
  }
  const double parse_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - parse_start)
                              .count();

  const std::string canonical = CanonicalRequest(req, sys.value());
  const std::string digest = FingerprintDigest(canonical);
  const char* command = req.mg ? "mg" : "verify";

  // Stamps the session-cumulative cache/serve counters; called on a copy
  // of the verdict so the memoized entry stays stamp-free and replays
  // identically no matter when it is hit.
  const auto stamp = [&im](Verdict& v, bool hit) {
    obs::Telemetry& t = v.telemetry;
    t.SetCounter(obs::metric::kCacheHit, hit ? 1 : 0);
    t.SetCounter(obs::metric::kCacheHits,
                 im.hits.load(std::memory_order_relaxed));
    t.SetCounter(obs::metric::kCacheMisses,
                 im.misses.load(std::memory_order_relaxed));
    t.SetCounter(obs::metric::kCacheEvictions,
                 im.evictions.load(std::memory_order_relaxed));
    {
      std::lock_guard<std::mutex> lock(im.cache_m);
      t.SetCounter(obs::metric::kCacheBytes, im.cache_bytes);
    }
    t.SetCounter(obs::metric::kServeRequests,
                 im.requests.load(std::memory_order_relaxed));
    t.SetCounter(obs::metric::kServeErrors,
                 im.errors.load(std::memory_order_relaxed));
  };

  EnvelopeExtras extras;
  extras.id_json = req.id_json;
  extras.fingerprint = digest;

  // Envelopes end with '\n' (the one-shot CLI contract); the line
  // protocol owns the terminator, so strip it here.
  const auto one_line = [](std::string s) {
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
  };

  // --- cache probe (single-flight per canonical request) ---
  std::shared_ptr<Impl::Inflight> flight;
  if (im.options.cache_entries != 0) {
    for (;;) {
      Impl::CacheEntry entry;
      if (!im.LookupOrBeginFlight(canonical, &entry, &flight)) break;
      if (entry.verdict.certificate != nullptr &&
          im.options.revalidate_certificates &&
          !RevalidateCertificate(sys.value(), entry.vopts.enable_prepass,
                                 *entry.verdict.certificate)) {
        // The memoized proof no longer checks out against this request's
        // system: drop the entry and recompute.
        im.Erase(canonical);
        continue;
      }
      im.hits.fetch_add(1, std::memory_order_relaxed);
      Verdict v = entry.verdict;
      // This request parsed its programs afresh before the probe, so the
      // parse gauge is re-measured; everything else — including the
      // echoed options object — replays the memoized rendering verbatim
      // (see serve.h for the replay contract).
      v.telemetry.SetGauge(obs::metric::kPhaseParseMs, parse_ms);
      stamp(v, /*hit=*/true);
      extras.cache = "hit";
      return one_line(VerdictToJson(v, entry.vopts, entry.command,
                                    entry.signature, pretty, &extras));
    }
  }

  // --- miss: run the pipeline on a warm engine ---
  im.misses.fetch_add(1, std::memory_order_relaxed);
  std::string rendered;
  try {
    const int slot = tl_serve_session == &im ? tl_serve_slot : 0;
    // Pool workers own their slot outright (one task at a time);
    // everyone else shares slot 0 behind a lock.
    std::unique_lock<std::mutex> slot0_lock;
    if (slot == 0) {
      slot0_lock = std::unique_lock<std::mutex>(im.slot0_m);
    }
    VerifierOptions vopts = req.vopts;
    vopts.datalog.warm_engine = im.WarmEngine(slot);

    SafetyVerifier verifier(sys.value());
    Verdict v = verifier.Run(goal, vopts);
    if (slot0_lock.owns_lock()) slot0_lock.unlock();
    v.telemetry.SetGauge(obs::metric::kPhaseParseMs, parse_ms);

    // Memoize before stamping: the stored verdict carries no
    // session-cumulative counters.
    VerifierOptions stored_opts = req.vopts;
    stored_opts.cancel = nullptr;
    stored_opts.obs.trace = nullptr;
    stored_opts.datalog.warm_engine = nullptr;

    extras.cache = "miss";
    Verdict stamped = v;
    stamp(stamped, /*hit=*/false);
    rendered = one_line(VerdictToJson(stamped, stored_opts, command,
                                      sys.value().Signature(), pretty,
                                      &extras));

    if (flight != nullptr) {
      std::optional<Impl::CacheEntry> entry;
      if (Definitive(v)) {
        entry.emplace();
        entry->key = canonical;
        entry->digest = digest;
        entry->command = command;
        entry->signature = sys.value().Signature();
        entry->verdict = std::move(v);
        entry->vopts = stored_opts;
        entry->bytes = entry->key.size() + rendered.size();
      }
      const std::shared_ptr<Impl::Inflight> f = std::move(flight);
      im.FinishFlight(canonical, f, std::move(entry));
    }
  } catch (const std::exception& e) {
    // Never strand the twins waiting on this flight, and answer the
    // error with the request's id echo still attached.
    if (flight != nullptr) im.FinishFlight(canonical, flight, std::nullopt);
    im.errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine(req.id_json, std::string("internal error: ") + e.what(),
                     pretty);
  } catch (...) {
    if (flight != nullptr) im.FinishFlight(canonical, flight, std::nullopt);
    im.errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorLine(req.id_json, "internal error", pretty);
  }
  return rendered;
}

void ServeSession::Run(std::istream& in, std::ostream& out) {
  std::string line;
  const auto blank = [](const std::string& s) {
    return s.find_first_not_of(" \t\r") == std::string::npos;
  };

  if (impl_->pool == nullptr) {
    while (std::getline(in, line)) {
      if (blank(line)) continue;
      out << HandleLine(line) << '\n';
      out.flush();
    }
    return;
  }

  // Concurrent requests, ordered responses: a bounded window of
  // in-flight slots. A dedicated writer thread drains completed slots
  // from the front of the window the moment they finish — independently
  // of input arrival, because a synchronous client (send one request,
  // wait for the answer) must receive response N without having to send
  // line N+1 or close the stream first.
  struct Slot {
    std::string line;
    std::string response;
    bool done = false;
  };
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Slot>> window;
  bool eof = false;
  const std::size_t max_inflight =
      static_cast<std::size_t>(impl_->pool->size()) * 4;

  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      cv.wait(lock, [&] {
        return (!window.empty() && window.front()->done) ||
               (eof && window.empty());
      });
      if (window.empty()) return;  // EOF reached and fully drained
      while (!window.empty() && window.front()->done) {
        const std::shared_ptr<Slot> slot = window.front();
        window.pop_front();
        cv.notify_all();  // a window slot freed: wake the reader
        lock.unlock();
        out << slot->response << '\n';
        out.flush();
        lock.lock();
      }
    }
  });

  while (std::getline(in, line)) {
    if (blank(line)) continue;
    auto slot = std::make_shared<Slot>();
    slot->line = line;
    {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return window.size() < max_inflight; });
      window.push_back(slot);
    }
    impl_->pool->Submit([this, slot, &m, &cv] {
      tl_serve_session = impl_.get();
      tl_serve_slot = ThreadPool::CurrentWorkerIndex() + 1;
      std::string response;
      try {
        response = HandleLine(slot->line);
      } catch (...) {
        // HandleLine answers errors in-band; this is the last-resort
        // guard that keeps an escaping exception from terminating the
        // pool's jthread and stranding the writer on a never-done slot.
        impl_->errors.fetch_add(1, std::memory_order_relaxed);
        response = ErrorLine("", "internal error", impl_->options.pretty);
      }
      {
        std::lock_guard<std::mutex> guard(m);
        slot->response = std::move(response);
        slot->done = true;
        // Notify while holding the lock: the writer may drain this slot,
        // see the window empty, and let Run() destroy `cv` the moment
        // the mutex is released — a notify after unlock would race the
        // destruction.
        cv.notify_all();
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(m);
    eof = true;
  }
  cv.notify_all();
  writer.join();
}

}  // namespace rapar::serve
