#include "core/shard.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "obs/telemetry.h"

namespace rapar {

namespace {

namespace metric = obs::metric;

std::string ErrnoText(const char* what) {
  return StrCat(what, ": ", std::strerror(errno));
}

}  // namespace

// --- checkpoint files -------------------------------------------------------

Expected<CursorCheckpoint> LoadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Expected<CursorCheckpoint>::Error(
        StrCat("cannot read checkpoint file '", path, "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return CursorCheckpoint::FromJson(buf.str());
}

Expected<bool> SaveCheckpointFile(const std::string& path,
                                  const CursorCheckpoint& cp) {
  const std::string tmp = path + ".tmp";
  const std::string text = cp.ToJson();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Expected<bool>::Error(ErrnoText("checkpoint open"));
  }
  const char* p = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = ErrnoText("checkpoint write");
      ::close(fd);
      ::unlink(tmp.c_str());
      return Expected<bool>::Error(err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never publish a torn file.
  if (::fsync(fd) != 0) {
    const std::string err = ErrnoText("checkpoint fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return Expected<bool>::Error(err);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = ErrnoText("checkpoint rename");
    ::unlink(tmp.c_str());
    return Expected<bool>::Error(err);
  }
  return true;
}

// --- subprocess runner ------------------------------------------------------

std::string SelfExecutablePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

Expected<std::vector<ShardProcessResult>> RunShardProcesses(
    const std::vector<std::vector<std::string>>& argvs) {
  struct Child {
    pid_t pid = -1;
    int fd = -1;
    std::string out;
  };
  std::vector<Child> children(argvs.size());
  std::string spawn_error;

  for (std::size_t c = 0; c < argvs.size(); ++c) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      spawn_error = ErrnoText("pipe");
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      spawn_error = ErrnoText("fork");
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      break;
    }
    if (pid == 0) {
      // Child: stdout -> pipe; stderr stays inherited for diagnostics.
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      std::vector<char*> argv;
      argv.reserve(argvs[c].size() + 1);
      for (const std::string& a : argvs[c]) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(pipefd[1]);
    children[c].pid = pid;
    children[c].fd = pipefd[0];
  }

  // One reader thread per spawned child keeps every pipe drained, so no
  // shard can deadlock on a full pipe while we wait on another.
  std::vector<std::thread> readers;
  readers.reserve(children.size());
  for (Child& child : children) {
    if (child.fd < 0) continue;
    readers.emplace_back([&child] {
      char buf[65536];
      for (;;) {
        const ssize_t n = ::read(child.fd, buf, sizeof(buf));
        if (n > 0) {
          child.out.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      ::close(child.fd);
    });
  }
  for (std::thread& t : readers) t.join();

  std::vector<ShardProcessResult> results(argvs.size());
  for (std::size_t c = 0; c < children.size(); ++c) {
    if (children[c].pid < 0) continue;
    int status = 0;
    while (::waitpid(children[c].pid, &status, 0) < 0 && errno == EINTR) {
    }
    results[c].exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    results[c].stdout_text = std::move(children[c].out);
  }
  if (!spawn_error.empty()) {
    return Expected<std::vector<ShardProcessResult>>::Error(spawn_error);
  }
  return results;
}

// --- envelope merge ---------------------------------------------------------

namespace {

// Numeric telemetry value: counters as uint64, gauges as double.
struct MetricValue {
  bool is_double = false;
  std::uint64_t u = 0;
  double d = 0.0;
};

bool ReadUInt(const JsonValue& v, std::uint64_t* out) {
  if (!v.is_number()) return false;
  if (v.number_is_uint) {
    *out = v.uinteger;
    return true;
  }
  if (v.number_is_int && v.integer >= 0) {
    *out = static_cast<std::uint64_t>(v.integer);
    return true;
  }
  return false;
}

// One parsed per-shard envelope, reduced to what the merge needs.
struct ShardView {
  const JsonValue* doc = nullptr;
  const JsonValue* telemetry = nullptr;
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  std::string verdict;
  const JsonValue* witness = nullptr;        // kNull when none
  const JsonValue* stopped_phase = nullptr;  // kNull when none
  bool has_term = false;
  std::uint64_t term_index = 0;
  std::uint64_t guesses = 0;
};

Expected<ShardView> ParseShardEnvelope(const JsonValue& doc,
                                       std::size_t pos) {
  const auto fail = [pos](std::string_view what) {
    return Expected<ShardView>::Error(
        StrCat("shard envelope ", pos, ": ", what));
  };
  if (!doc.is_object()) return fail("not a JSON object");
  ShardView s;
  s.doc = &doc;
  const JsonValue* verdict = doc.Find("verdict");
  if (verdict == nullptr || !verdict->is_string()) {
    return fail("missing verdict");
  }
  s.verdict = verdict->string;
  s.witness = doc.Find("witness");
  s.stopped_phase = doc.Find("stopped_phase");
  s.telemetry = doc.Find("telemetry");
  if (s.telemetry == nullptr || !s.telemetry->is_object()) {
    return fail("missing telemetry");
  }
  const JsonValue* shard = doc.Find("shard");
  if (shard == nullptr || !shard->is_object()) {
    return fail("missing \"shard\" section (not a shard-mode envelope)");
  }
  const JsonValue* idx = shard->Find("index");
  const JsonValue* count = shard->Find("count");
  if (idx == nullptr || !ReadUInt(*idx, &s.index) || count == nullptr ||
      !ReadUInt(*count, &s.count)) {
    return fail("malformed shard index/count");
  }
  const JsonValue* term = shard->Find("terminating_index");
  if (term != nullptr && term->is_number()) {
    if (!ReadUInt(*term, &s.term_index)) {
      return fail("malformed shard terminating_index");
    }
    s.has_term = true;
  }
  const JsonValue* guesses = s.telemetry->Find(metric::kGuesses);
  if (guesses == nullptr || !ReadUInt(*guesses, &s.guesses)) {
    return fail("missing verify.guesses");
  }
  return s;
}

// Telemetry keys the merge sets from the first-terminating-event rule
// (or drops) instead of summing across shards.
bool RuleSetMetric(std::string_view name) {
  return name == metric::kGuesses || name == metric::kShardIndex ||
         name == metric::kShardCount ||
         name == metric::kShardTerminatingIndex ||
         name == metric::kCheckpointResumeOffset ||
         name == metric::kBudgetAbortedGuess ||
         name == metric::kParEarlyExitIndex;
}

}  // namespace

Expected<MergedShardEnvelope> MergeShardEnvelopes(
    const std::vector<std::string>& envelopes, bool pretty) {
  using Out = Expected<MergedShardEnvelope>;
  if (envelopes.empty()) return Out::Error("no shard envelopes to merge");

  std::vector<JsonValue> docs;
  docs.reserve(envelopes.size());
  std::vector<ShardView> shards(envelopes.size());
  for (std::size_t i = 0; i < envelopes.size(); ++i) {
    Expected<JsonValue> doc = ParseJson(envelopes[i]);
    if (!doc.ok()) {
      return Out::Error(StrCat("shard envelope ", i, ": ", doc.error()));
    }
    docs.push_back(std::move(doc).value());
  }
  for (std::size_t i = 0; i < docs.size(); ++i) {
    Expected<ShardView> view = ParseShardEnvelope(docs[i], i);
    if (!view.ok()) return Out::Error(view.error());
    const std::uint64_t idx = view.value().index;
    if (view.value().count != envelopes.size()) {
      return Out::Error(StrCat("shard envelope ", i, ": shard count ",
                               view.value().count, " != ",
                               envelopes.size(), " envelopes"));
    }
    if (idx >= shards.size() || shards[idx].doc != nullptr) {
      return Out::Error(
          StrCat("shard envelope ", i, ": duplicate or out-of-range shard ",
                 "index ", idx));
    }
    shards[idx] = view.value();
  }

  // First terminating event wins: the minimum global terminating index
  // across shards is the single-process stop index.
  const ShardView* winner = nullptr;
  for (const ShardView& s : shards) {
    if (!s.has_term) continue;
    if (winner == nullptr || s.term_index < winner->term_index) {
      winner = &s;
    }
  }

  // Merged verdict / witness / guess accounting (the bit-identical part).
  std::string verdict;
  std::uint64_t guesses = 0;
  if (winner != nullptr) {
    verdict = winner->verdict == "unsafe" ? "unsafe" : "unknown";
    guesses = winner->term_index + 1;
  } else {
    bool all_safe = true;
    for (const ShardView& s : shards) {
      guesses += s.guesses;
      if (s.verdict != "safe") all_safe = false;
    }
    verdict = all_safe ? "safe" : "unknown";
  }
  const int exit_code = verdict == "unsafe" ? 1 : (verdict == "safe" ? 0 : 2);

  // Sum the remaining telemetry across shards (work performed), keyed in
  // first-appearance order over the shard-index ordering.
  std::vector<std::pair<std::string, MetricValue>> merged;
  std::map<std::string, std::size_t> merged_index;
  for (const ShardView& s : shards) {
    for (const auto& [name, value] : s.telemetry->members) {
      if (RuleSetMetric(name) || !value.is_number()) continue;
      auto [it, inserted] = merged_index.emplace(name, merged.size());
      if (inserted) merged.emplace_back(name, MetricValue{});
      MetricValue& m = merged[it->second].second;
      std::uint64_t u = 0;
      if (!m.is_double && ReadUInt(value, &u)) {
        m.u += u;
      } else {
        if (!m.is_double) {
          m.is_double = true;
          m.d = static_cast<double>(m.u);
        }
        m.d += value.number;
      }
    }
  }

  JsonWriter w(pretty);
  w.BeginObject();
  for (const auto& [key, value] : shards[0].doc->members) {
    if (key == "verdict") {
      w.Key("verdict").String(verdict);
    } else if (key == "exit_code") {
      w.Key("exit_code").Int(exit_code);
    } else if (key == "witness") {
      w.Key("witness");
      if (winner != nullptr && verdict == "unsafe" &&
          winner->witness != nullptr) {
        WriteJsonValue(*winner->witness, &w);
      } else {
        w.Null();
      }
    } else if (key == "stopped_phase") {
      // A terminating event is definitive about the prefix; without one,
      // the first truncated shard explains why the merge is inconclusive.
      w.Key("stopped_phase");
      const JsonValue* phase = nullptr;
      if (winner == nullptr) {
        for (const ShardView& s : shards) {
          if (s.stopped_phase != nullptr && s.stopped_phase->is_string()) {
            phase = s.stopped_phase;
            break;
          }
        }
      }
      if (phase != nullptr) {
        WriteJsonValue(*phase, &w);
      } else {
        w.Null();
      }
    } else if (key == "shard") {
      w.Key("shard").BeginObject();
      w.Key("count").UInt(shards.size());
      w.Key("winner");
      if (winner != nullptr) {
        w.UInt(winner->index);
      } else {
        w.Null();
      }
      w.Key("per_shard").BeginArray();
      for (const ShardView& s : shards) {
        w.BeginObject();
        w.Key("index").UInt(s.index);
        w.Key("verdict").String(s.verdict);
        w.Key("guesses").UInt(s.guesses);
        w.Key("solves").UInt(s.telemetry->Find(metric::kParSolves) != nullptr
                                 ? s.telemetry->Find(metric::kParSolves)
                                       ->uinteger
                                 : 0);
        w.Key("steals").UInt(s.telemetry->Find(metric::kParSteals) != nullptr
                                 ? s.telemetry->Find(metric::kParSteals)
                                       ->uinteger
                                 : 0);
        const JsonValue* ms = s.telemetry->Find(metric::kPhaseSolveMs);
        w.Key("solve_ms").Double(ms != nullptr ? ms->number : 0.0);
        const JsonValue* cw = s.telemetry->Find(metric::kCheckpointWrites);
        w.Key("checkpoint_writes").UInt(cw != nullptr ? cw->uinteger : 0);
        w.Key("terminating_index");
        if (s.has_term) {
          w.UInt(s.term_index);
        } else {
          w.Null();
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    } else if (key == "telemetry") {
      w.Key("telemetry").BeginObject();
      w.Key(metric::kGuesses).UInt(guesses);
      if (winner != nullptr) {
        if (verdict != "unsafe") {
          w.Key(metric::kBudgetAbortedGuess).UInt(winner->term_index);
        }
        w.Key(metric::kParEarlyExitIndex).UInt(winner->term_index);
      }
      for (const auto& [name, m] : merged) {
        w.Key(name);
        if (m.is_double) {
          w.Double(m.d);
        } else {
          w.UInt(m.u);
        }
      }
      w.EndObject();
    } else {
      // Shard 0 carries the shared metadata (command, system signature,
      // options echo) and — because global index 0 is always in shard
      // 0's residue class — the same width report the single-process run
      // would emit.
      w.Key(key);
      WriteJsonValue(value, &w);
    }
  }
  w.EndObject();

  MergedShardEnvelope out;
  out.envelope_json = w.TakeString();
  out.envelope_json += '\n';
  out.verdict = verdict;
  out.exit_code = exit_code;
  return out;
}

}  // namespace rapar
