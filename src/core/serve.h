// Verification service: the long-running daemon behind `rapar_cli serve`.
//
// A ServeSession reads newline-delimited JSON requests (one verify/mg
// request per line), dispatches them onto a persistent work-stealing
// ThreadPool whose workers keep one dl::Engine arena warm across
// requests, and answers each with the standard versioned result envelope
// (core/result_json.h) on a single line — the same schema one-shot
// `rapar_cli verify --format=json` emits, plus three serve-only fields
// (`id` echo, `fingerprint`, `cache`).
//
// Request schema (all fields except "command" optional; unknown fields
// are ignored, mirroring the envelope's versioning contract):
//
//   {"id": <any json>,            // echoed back verbatim
//    "command": "verify" | "mg",
//    "env": "<program text>",     // or "env_file": "<path>"
//    "dis": ["<text>", ...],      // or "dis_files": ["<path>", ...]
//    "var": "<name>", "val": N,   // mg goal message
//    "options": {"backend": "simplified|datalog|concrete|tmai|portfolio",
//                "unroll": K, "enable_prepass": B, "enable_dlopt": B,
//                "threads": N, "batch_size": N, "env_threads": N,
//                "tmai_domain": "smallset|relational|auto",
//                "tmai_max_iterations": N, "tmai_widening_delay": N,
//                "tmai_value_set_limit": N, "max_states": N,
//                "max_depth": N, "time_budget_ms": N, "max_guesses": N}}
//
// Batch requests: a line whose top-level object has a "requests" member
// bundles several requests into one round trip —
//
//   {"id": <any json>, "requests": [<request>, <request>, ...]}
//
// answered as one line {"id": ..., "responses": [<envelope>, ...]} with
// the response envelopes in request order. Each element is exactly the
// envelope the same request would have received on its own line
// (including per-request id echo and error envelopes for malformed
// elements — one bad element never fails its siblings), and the batch
// shares the verdict cache's single-flight coalescing, so duplicate
// requests inside one batch run the pipeline once. Lines without a
// top-level "requests" member are byte-identical to the pre-batch
// protocol.
//
// Malformed requests answer a one-line error envelope (command "error",
// exit_code 3) and the daemon keeps serving. Integer option fields are
// range-checked during decoding: an out-of-range value (e.g. an
// "env_threads" that would not survive the narrowing cast) is a decode
// error, never a silently wrapped knob. Internal failures — a backend
// exception, an allocation failure mid-render — answer the same error
// envelope: errors never kill the stream.
//
// In front of the pipeline sits a content-addressed verdict cache:
// requests are fingerprinted by a canonical normalization — the pretty-
// printed programs (post-unroll), the system's class signature, the goal,
// and every option field that reaches the backends — so two requests
// collide exactly when they would run the same verification. Hits replay
// the memoized verdict (certificate re-validated via
// tmai::CheckCertificate, cache/serve telemetry re-stamped); misses run
// the pipeline and populate a bounded LRU. Only definitive verdicts
// (safe/unsafe with no truncation) are memoized — an unknown produced by
// a deadline is wall-clock state, not a fact about the program. See
// DESIGN.md §12 for the cache-correctness argument.
//
// Replay contract: a hit renders the memoized entry verbatim — including
// the echoed "options" object, so fingerprint-excluded scheduling knobs
// (threads, batch_size) report the values the entry was computed with,
// not the current request's. This is intentional: modulo telemetry and
// the cache marker, a hit is byte-identical to the miss that populated
// it, which is what the catalog-replay differential asserts. Telemetry
// is the exception — cache/serve counters and the parse-time gauge are
// re-stamped from the current request (the programs really were
// re-parsed to compute the fingerprint).
#ifndef RAPAR_CORE_SERVE_H_
#define RAPAR_CORE_SERVE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

namespace rapar {
struct JsonValue;
}

namespace rapar::serve {

struct ServeOptions {
  // Worker threads for the request pool. 0 = hardware concurrency;
  // 1 = no pool, requests handled inline on the caller's thread. Each
  // worker owns a warm dl::Engine reused across the requests it serves.
  unsigned threads = 0;
  // Verdict-cache bounds: maximum resident entries and an approximate
  // resident-bytes ceiling (canonical key + stored verdict). Either
  // bound evicts least-recently-used entries; cache_entries = 0 disables
  // the cache entirely.
  std::size_t cache_entries = 1024;
  std::size_t cache_bytes = 64u << 20;
  // Indent response envelopes (default off: one response per line, the
  // wire format).
  bool pretty = false;
  // Re-validate a memoized TMAI certificate against the freshly parsed
  // request system before replaying it (tmai::CheckCertificate); a
  // failed check evicts the entry and re-runs the pipeline. On by
  // default — it is the cache's end-to-end self-check.
  bool revalidate_certificates = true;
};

// Session-cumulative cache counters (also stamped into every response's
// telemetry as cache.hits/misses/evictions/bytes).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;    // current resident estimate, not cumulative
  std::uint64_t entries = 0;  // current resident entries
};

class ServeSession {
 public:
  explicit ServeSession(const ServeOptions& options = {});
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  // Handles one request line and returns exactly one response line (no
  // trailing newline). Thread-safe: Run() calls this from every pool
  // worker concurrently. Never throws — an exception escaping the
  // pipeline is answered as an error envelope, like a malformed request.
  std::string HandleLine(std::string_view line);

  // Reads requests from `in` until EOF and writes one response line per
  // request to `out`, in request order. Requests are handled
  // concurrently on the pool (bounded in-flight window); ordering is
  // restored on output, and each response is written as soon as it
  // reaches the front of the window — a synchronous request/response
  // client never has to send more input to receive a finished answer.
  void Run(std::istream& in, std::ostream& out);

  CacheStats cache_stats() const;

 private:
  struct Impl;
  std::string HandleLineImpl(std::string_view line);
  // One parsed request object -> one rendered envelope (no trailing
  // newline). The single-request and batch paths share it.
  std::string HandleRequestDoc(const JsonValue& doc);
  std::unique_ptr<Impl> impl_;
};

}  // namespace rapar::serve

#endif  // RAPAR_CORE_SERVE_H_
