// Successor enumeration and step application for the simplified semantics.
//
// The rules are documented in README-semantics.md. Enumeration and
// application are split so that the explorer can enumerate candidate steps
// cheaply while witness replay (depgraph) re-applies recorded steps
// deterministically.
#ifndef RAPAR_SIMPLIFIED_TRANSITIONS_H_
#define RAPAR_SIMPLIFIED_TRANSITIONS_H_

#include <optional>
#include <vector>

#include "lang/cfa.h"
#include "simplified/simpl_config.h"
#include "simplified/step.h"

namespace rapar {

// Gap-choice policy for the nondeterministic ⁺-timestamps (see
// README-semantics.md): kMinimal takes the least admissible unfrozen gap,
// kAll enumerates every admissible unfrozen gap. dis *store* insertion
// gaps are always fully enumerated — dis timestamps carry information.
enum class ViewChoice { kMinimal, kAll };

// The threads of a parameterized instance in CFA form: one env template
// plus n dis programs over the same variable universe.
struct SimplSystem {
  const Cfa* env = nullptr;
  std::vector<const Cfa*> dis;
  Value dom = 2;
  std::size_t num_vars = 0;
};

// What a step did to shared memory — used for dependency tracking.
struct StepEffect {
  // Message read (valid if read=true): identified in the *pre-state*.
  bool read = false;
  bool read_is_env = false;
  VarId read_var;
  Value read_val = 0;
  View read_view;  // pre-state identity of the message
  // Message written (valid if wrote=true): identified in the *post-state*.
  bool wrote = false;
  bool wrote_is_env = false;
  VarId wrote_var;
  Value wrote_val = 0;
  View wrote_view;
  // True if the write added a genuinely new message (env messages may
  // re-insert an existing (x,d,vw) — the paper's repeated insertion).
  bool wrote_fresh = false;
  // The stepping actor's local configuration after the step (post-state
  // values), and whether it was new to the env-configuration set (always
  // true for dis threads). Used for provenance tracking in depgraph/.
  LocalCfg actor_after;
  bool actor_fresh = true;
};

// Appends every enabled step from `cfg` to `out`.
void EnumerateSteps(const SimplSystem& sys, const SimplConfig& cfg,
                    ViewChoice policy, std::vector<SimplStep>& out);

// Appends the enabled steps of one actor only: the env clone at
// env_cfgs()[idx], or dis thread idx.
void EnumerateActorSteps(const SimplSystem& sys, const SimplConfig& cfg,
                         ViewChoice policy, SimplStep::Actor actor,
                         std::uint32_t idx, std::vector<SimplStep>& out);

// Applies `step` (which must be enabled in `cfg`) in place and reports the
// memory effect. Asserts on disabled steps.
StepEffect ApplyStep(const SimplSystem& sys, SimplConfig& cfg,
                     const SimplStep& step);

// Renders the step against the system (thread, instruction, choices).
std::string StepToString(const SimplSystem& sys, const SimplStep& step);

}  // namespace rapar

#endif  // RAPAR_SIMPLIFIED_TRANSITIONS_H_
