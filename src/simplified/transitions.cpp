#include "simplified/transitions.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace rapar {

namespace {

const Cfa& ActorCfa(const SimplSystem& sys, const SimplStep& step) {
  if (step.actor == SimplStep::Actor::kEnv) return *sys.env;
  return *sys.dis[step.actor_index];
}

const LocalCfg& ActorCfg(const SimplConfig& cfg, const SimplStep& step) {
  if (step.actor == SimplStep::Actor::kEnv) {
    return cfg.env_cfgs()[step.actor_index];
  }
  return cfg.dis_thread(step.actor_index);
}

// Enumerates the steps of one actor (env clone at env_cfgs()[idx], or dis
// thread idx).
void EnumerateActor(const SimplSystem& sys, const SimplConfig& cfg,
                    ViewChoice policy, SimplStep::Actor actor,
                    std::uint32_t idx, std::vector<SimplStep>& out) {
  const bool is_env = actor == SimplStep::Actor::kEnv;
  const Cfa& cfa = is_env ? *sys.env : *sys.dis[idx];
  const LocalCfg& lc =
      is_env ? cfg.env_cfgs()[idx] : cfg.dis_thread(idx);

  auto base_step = [&](EdgeId eid) {
    SimplStep s;
    s.actor = actor;
    s.actor_index = idx;
    s.edge = eid.value();
    return s;
  };

  for (EdgeId eid : cfa.OutEdges(lc.node)) {
    const Instr& instr = cfa.Edge(eid).instr;
    switch (instr.kind) {
      case Instr::Kind::kNop:
      case Instr::Kind::kAssign:
        out.push_back(base_step(eid));
        break;
      case Instr::Kind::kAssume:
        if (instr.expr->Eval(lc.rv, sys.dom) != 0) {
          out.push_back(base_step(eid));
        }
        break;
      case Instr::Kind::kAssertFail: {
        SimplStep s = base_step(eid);
        s.violation = true;
        out.push_back(std::move(s));
        break;
      }
      case Instr::Kind::kLoad: {
        const VarId x = instr.var;
        // From dis messages: timestamp check against the thread view.
        const auto& seq = cfg.DisMsgsOf(x);
        for (std::size_t p = 0; p < seq.size(); ++p) {
          if (seq[p].view[x] < lc.view[x]) continue;
          SimplStep s = base_step(eid);
          s.read_kind = SimplStep::ReadKind::kDisMsg;
          s.read_pos = static_cast<std::int32_t>(p);
          out.push_back(std::move(s));
        }
        // From env messages: always enabled; choose the clone gap.
        const auto& emsgs = cfg.env_msgs();
        for (std::size_t mi = 0; mi < emsgs.size(); ++mi) {
          if (emsgs[mi].var != x) continue;
          const int lo = std::max(GapOf(lc.view[x]), GapOf(emsgs[mi].ts()));
          if (policy == ViewChoice::kMinimal) {
            SimplStep s = base_step(eid);
            s.read_kind = SimplStep::ReadKind::kEnvMsg;
            s.read_pos = static_cast<std::int32_t>(mi);
            s.gap = cfg.NextFreeGap(x, lo);
            out.push_back(std::move(s));
          } else {
            for (int h = lo; h < cfg.NumGaps(x); ++h) {
              if (cfg.GapFrozen(x, h)) continue;
              SimplStep s = base_step(eid);
              s.read_kind = SimplStep::ReadKind::kEnvMsg;
              s.read_pos = static_cast<std::int32_t>(mi);
              s.gap = h;
              out.push_back(std::move(s));
            }
          }
        }
        break;
      }
      case Instr::Kind::kStore: {
        const VarId x = instr.var;
        const int lo = GapOf(lc.view[x]);
        if (is_env) {
          // env store: env message in a chosen unfrozen gap.
          if (policy == ViewChoice::kMinimal) {
            SimplStep s = base_step(eid);
            s.gap = cfg.NextFreeGap(x, lo);
            out.push_back(std::move(s));
          } else {
            for (int h = lo; h < cfg.NumGaps(x); ++h) {
              if (cfg.GapFrozen(x, h)) continue;
              SimplStep s = base_step(eid);
              s.gap = h;
              out.push_back(std::move(s));
            }
          }
        } else {
          // dis store: insertion position carries information — always
          // enumerate every unfrozen gap.
          for (int h = lo; h < cfg.NumGaps(x); ++h) {
            if (cfg.GapFrozen(x, h)) continue;
            SimplStep s = base_step(eid);
            s.gap = h;
            out.push_back(std::move(s));
          }
        }
        break;
      }
      case Instr::Kind::kCas: {
        assert(!is_env && "env threads are CAS-free in this system class");
        const VarId x = instr.var;
        const Value expected = lc.rv[instr.reg.index()];
        // CAS on a dis message t: view(x) <= 2t, value match, gap t not
        // frozen (adjacency).
        const auto& seq = cfg.DisMsgsOf(x);
        for (std::size_t p = 0; p < seq.size(); ++p) {
          if (seq[p].val != expected) continue;
          if (seq[p].view[x] < lc.view[x]) continue;
          if (cfg.GapFrozen(x, static_cast<int>(p))) continue;
          SimplStep s = base_step(eid);
          s.read_kind = SimplStep::ReadKind::kDisMsg;
          s.read_pos = static_cast<std::int32_t>(p);
          out.push_back(std::move(s));
        }
        // CAS on an env message: clone always readable; the store is an
        // ordinary dis insertion into a chosen gap (no freeze).
        const auto& emsgs = cfg.env_msgs();
        for (std::size_t mi = 0; mi < emsgs.size(); ++mi) {
          if (emsgs[mi].var != x || emsgs[mi].val != expected) continue;
          const int lo = std::max(GapOf(lc.view[x]), GapOf(emsgs[mi].ts()));
          for (int h = lo; h < cfg.NumGaps(x); ++h) {
            if (cfg.GapFrozen(x, h)) continue;
            SimplStep s = base_step(eid);
            s.read_kind = SimplStep::ReadKind::kEnvMsg;
            s.read_pos = static_cast<std::int32_t>(mi);
            s.gap = h;
            out.push_back(std::move(s));
          }
        }
        break;
      }
    }
  }
}

}  // namespace

void EnumerateSteps(const SimplSystem& sys, const SimplConfig& cfg,
                    ViewChoice policy, std::vector<SimplStep>& out) {
  for (std::uint32_t i = 0; i < cfg.env_cfgs().size(); ++i) {
    EnumerateActor(sys, cfg, policy, SimplStep::Actor::kEnv, i, out);
  }
  for (std::uint32_t i = 0; i < cfg.dis_threads().size(); ++i) {
    EnumerateActor(sys, cfg, policy, SimplStep::Actor::kDis, i, out);
  }
}

void EnumerateActorSteps(const SimplSystem& sys, const SimplConfig& cfg,
                         ViewChoice policy, SimplStep::Actor actor,
                         std::uint32_t idx, std::vector<SimplStep>& out) {
  EnumerateActor(sys, cfg, policy, actor, idx, out);
}

StepEffect ApplyStep(const SimplSystem& sys, SimplConfig& cfg,
                     const SimplStep& step) {
  StepEffect effect;
  const bool is_env = step.actor == SimplStep::Actor::kEnv;
  const Cfa& cfa = ActorCfa(sys, step);
  // Work on a copy of the actor's local configuration.
  LocalCfg lc = ActorCfg(cfg, step);
  const CfaEdge& edge = cfa.Edge(EdgeId(step.edge));
  const Instr& instr = edge.instr;
  assert(edge.from == lc.node);

  auto commit = [&](LocalCfg&& next) {
    next.node = edge.to;
    effect.actor_after = next;
    if (is_env) {
      effect.actor_fresh = cfg.AddEnvCfg(std::move(next));
    } else {
      effect.actor_fresh = true;
      cfg.dis_thread(step.actor_index) = std::move(next);
    }
  };

  switch (instr.kind) {
    case Instr::Kind::kNop:
    case Instr::Kind::kAssertFail:
      commit(std::move(lc));
      return effect;
    case Instr::Kind::kAssume:
      assert(instr.expr->Eval(lc.rv, sys.dom) != 0);
      commit(std::move(lc));
      return effect;
    case Instr::Kind::kAssign:
      lc.rv[instr.reg.index()] = instr.expr->Eval(lc.rv, sys.dom);
      commit(std::move(lc));
      return effect;
    case Instr::Kind::kLoad: {
      const VarId x = instr.var;
      if (step.read_kind == SimplStep::ReadKind::kDisMsg) {
        const DisMsg& msg = cfg.DisMsgsOf(x)[step.read_pos];
        assert(msg.view[x] >= lc.view[x]);
        effect.read = true;
        effect.read_is_env = false;
        effect.read_var = x;
        effect.read_val = msg.val;
        effect.read_view = msg.view;
        lc.rv[instr.reg.index()] = msg.val;
        lc.view = lc.view.Join(msg.view);
        commit(std::move(lc));
        return effect;
      }
      assert(step.read_kind == SimplStep::ReadKind::kEnvMsg);
      const EnvMsg msg = cfg.env_msgs()[step.read_pos];
      assert(msg.var == x);
      assert(step.gap >= std::max(GapOf(lc.view[x]), GapOf(msg.ts())));
      assert(!cfg.GapFrozen(x, step.gap));
      effect.read = true;
      effect.read_is_env = true;
      effect.read_var = x;
      effect.read_val = msg.val;
      effect.read_view = msg.view;
      lc.rv[instr.reg.index()] = msg.val;
      lc.view = lc.view.Join(msg.view);
      lc.view.Set(x, PlusTs(step.gap));  // the promoted clone's timestamp
      commit(std::move(lc));
      return effect;
    }
    case Instr::Kind::kStore: {
      const VarId x = instr.var;
      const Value d = lc.rv[instr.reg.index()];
      assert(step.gap >= GapOf(lc.view[x]));
      assert(!cfg.GapFrozen(x, step.gap));
      if (is_env) {
        EnvMsg msg;
        msg.var = x;
        msg.val = d;
        msg.view = lc.view;
        msg.view.Set(x, PlusTs(step.gap));
        lc.view = msg.view;
        effect.wrote = true;
        effect.wrote_is_env = true;
        effect.wrote_var = x;
        effect.wrote_val = d;
        effect.wrote_view = msg.view;
        effect.wrote_fresh = cfg.AddEnvMsg(std::move(msg));
        commit(std::move(lc));
        return effect;
      }
      cfg.InsertDisMsg(x, step.gap, d, lc.view, /*cas_on_dis=*/false);
      const DisMsg& inserted = cfg.DisMsgsOf(x)[step.gap + 1];
      // Renumbering may have shifted the thread's view on other variables?
      // No: insertion shifts only x-components, and the storer's x-view is
      // below the insertion point; adopt the message view.
      lc.view = inserted.view;
      effect.wrote = true;
      effect.wrote_is_env = false;
      effect.wrote_var = x;
      effect.wrote_val = d;
      effect.wrote_view = inserted.view;
      effect.wrote_fresh = true;
      commit(std::move(lc));
      return effect;
    }
    case Instr::Kind::kCas: {
      assert(!is_env);
      const VarId x = instr.var;
      const Value expected = lc.rv[instr.reg.index()];
      const Value desired = lc.rv[instr.reg2.index()];
      (void)expected;
      if (step.read_kind == SimplStep::ReadKind::kDisMsg) {
        const int t = step.read_pos;
        const DisMsg msg = cfg.DisMsgsOf(x)[t];
        assert(msg.val == expected);
        assert(msg.view[x] >= lc.view[x]);
        effect.read = true;
        effect.read_is_env = false;
        effect.read_var = x;
        effect.read_val = msg.val;
        effect.read_view = msg.view;
        const View base = lc.view.Join(msg.view);
        cfg.InsertDisMsg(x, t, desired, base, /*cas_on_dis=*/true);
        const DisMsg& inserted = cfg.DisMsgsOf(x)[t + 1];
        lc.view = inserted.view;
        effect.wrote = true;
        effect.wrote_is_env = false;
        effect.wrote_var = x;
        effect.wrote_val = desired;
        effect.wrote_view = inserted.view;
        effect.wrote_fresh = true;
        commit(std::move(lc));
        return effect;
      }
      assert(step.read_kind == SimplStep::ReadKind::kEnvMsg);
      const EnvMsg msg = cfg.env_msgs()[step.read_pos];
      assert(msg.var == x && msg.val == expected);
      assert(step.gap >= std::max(GapOf(lc.view[x]), GapOf(msg.ts())));
      effect.read = true;
      effect.read_is_env = true;
      effect.read_var = x;
      effect.read_val = msg.val;
      effect.read_view = msg.view;
      View base = lc.view.Join(msg.view);
      // The loaded clone sits at the top of the chosen gap; cap the base
      // view's x-component there before the insertion raises it.
      base.Set(x, std::min<AbsTs>(base[x], PlusTs(step.gap)));
      cfg.InsertDisMsg(x, step.gap, desired, base, /*cas_on_dis=*/false);
      const DisMsg& inserted = cfg.DisMsgsOf(x)[step.gap + 1];
      lc.view = inserted.view;
      effect.wrote = true;
      effect.wrote_is_env = false;
      effect.wrote_var = x;
      effect.wrote_val = desired;
      effect.wrote_view = inserted.view;
      effect.wrote_fresh = true;
      commit(std::move(lc));
      return effect;
    }
  }
  assert(false && "unreachable");
  return effect;
}

std::string SimplStep::ToString() const {
  std::string out =
      StrCat(actor == Actor::kEnv ? "env" : "dis", "[", actor_index,
             "] edge=", edge);
  if (read_kind == ReadKind::kDisMsg) out += StrCat(" read dis@", read_pos);
  if (read_kind == ReadKind::kEnvMsg) out += StrCat(" read env#", read_pos);
  if (gap >= 0) out += StrCat(" gap=", gap);
  if (violation) out += " VIOLATION";
  return out;
}

std::string StepToString(const SimplSystem& sys, const SimplStep& step) {
  const Cfa& cfa = ActorCfa(sys, step);
  const Instr& instr = cfa.Edge(EdgeId(step.edge)).instr;
  return StrCat(step.ToString(), " : ",
                instr.ToString(cfa.program().vars(), cfa.program().regs()));
}

}  // namespace rapar
