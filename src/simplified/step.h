// A single transition of the simplified semantics, recorded with all
// nondeterministic choices resolved so that it can be deterministically
// replayed (depgraph/ rebuilds dependency graphs from step traces).
#ifndef RAPAR_SIMPLIFIED_STEP_H_
#define RAPAR_SIMPLIFIED_STEP_H_

#include <cstdint>
#include <string>

#include "common/ids.h"

namespace rapar {

struct SimplStep {
  enum class Actor { kEnv, kDis };
  enum class ReadKind { kNone, kDisMsg, kEnvMsg };

  Actor actor = Actor::kEnv;
  // For env: index into the pre-state's env_cfgs() vector (the stepping
  // clone's configuration). For dis: the dis thread index.
  std::uint32_t actor_index = 0;
  // Edge id within the actor's CFA.
  std::uint32_t edge = 0;
  // Which message the instruction reads (loads and CAS).
  ReadKind read_kind = ReadKind::kNone;
  // kDisMsg: position in DisMsgsOf(var); kEnvMsg: index into env_msgs().
  std::int32_t read_pos = -1;
  // Chosen gap: env store / clone-promotion gap on env reads / dis store
  // insertion gap / CAS-on-env insertion gap. -1 when not applicable
  // (e.g. CAS on a dis message, where the gap is the loaded position).
  std::int32_t gap = -1;
  // The step traverses an `assert false` edge.
  bool violation = false;

  std::string ToString() const;
};

}  // namespace rapar

#endif  // RAPAR_SIMPLIFIED_STEP_H_
