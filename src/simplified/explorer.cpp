#include "simplified/explorer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <unordered_map>

namespace rapar {

namespace {

// Shared deadline + external-cancellation bookkeeping.
struct Budget {
  std::chrono::steady_clock::time_point deadline;
  bool limited = false;
  std::size_t ticks = 0;
  const CancellationToken* cancel = nullptr;

  explicit Budget(long long ms, const CancellationToken* cancel_token)
      : cancel(cancel_token) {
    if (ms > 0) {
      limited = true;
      deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
  }
  bool Expired() {
    if ((limited || cancel != nullptr) && (++ticks & 63) == 0) {
      if (limited && std::chrono::steady_clock::now() > deadline) hit = true;
      if (cancel != nullptr && cancel->cancelled()) cancelled = true;
    }
    return hit || cancelled;
  }
  // Latched on the first expiry so callers can attribute a truncated
  // search to the budget rather than the state/depth caps or an
  // external cancel.
  bool hit = false;
  bool cancelled = false;
};

bool GoalIn(const SimplConfig& cfg,
            const std::optional<std::pair<VarId, Value>>& goal) {
  if (!goal.has_value()) return false;
  const auto [gx, gv] = *goal;
  for (const EnvMsg& m : cfg.env_msgs()) {
    if (m.var == gx && m.val == gv) return true;
  }
  const auto& seq = cfg.DisMsgsOf(gx);
  for (std::size_t p = 1; p < seq.size(); ++p) {
    if (seq[p].val == gv) return true;
  }
  return false;
}

}  // namespace

SimplConfig InitialConfig(const SimplSystem& sys) {
  std::vector<std::size_t> dis_regs;
  dis_regs.reserve(sys.dis.size());
  for (const Cfa* d : sys.dis) dis_regs.push_back(d->program().regs().size());
  return SimplConfig(sys.num_vars, sys.env->program().regs().size(),
                     dis_regs);
}

// Applies env steps until fixpoint. Every step that adds an env message or
// configuration is appended to `log` (deterministically replayable).
// Returns true if the search should stop (violation with stop request, or
// goal found); fills the result fields accordingly.
//
// Soundness of eager saturation: env transitions only ever add to the
// monotone components (messages/configurations) and never disable any
// transition — neither env nor dis (reads are enabled by more messages;
// gap freezing stems only from the dis part, which env steps do not
// touch). Hence interleaving env steps eagerly preserves exactly the set
// of reachable dis-part behaviours and the set of generable messages.
struct SaturationOutcome {
  bool violation = false;
  std::size_t violation_log_len = 0;  // log length at violation time
  bool goal = false;
  bool complete = true;  // false if the budget expired mid-saturation
};

static SaturationOutcome SaturateEnv(
    const SimplSystem& sys, SimplConfig& cfg, ViewChoice policy,
    const std::optional<std::pair<VarId, Value>>& goal,
    std::vector<SimplStep>& log, Budget& budget) {
  SaturationOutcome outcome;
  outcome.goal = GoalIn(cfg, goal);
  if (outcome.goal) return outcome;

  std::vector<SimplStep> steps;
  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate over a snapshot of configuration values; indices move as the
    // sorted set grows, so every application re-resolves its index.
    const std::vector<LocalCfg> snapshot = cfg.env_cfgs();
    for (const LocalCfg& value : snapshot) {
      if (budget.Expired()) {
        outcome.complete = false;
        return outcome;
      }
      const auto& cfgs = cfg.env_cfgs();
      auto it = std::lower_bound(cfgs.begin(), cfgs.end(), value);
      assert(it != cfgs.end() && *it == value);
      std::uint32_t idx = static_cast<std::uint32_t>(it - cfgs.begin());
      steps.clear();
      EnumerateActorSteps(sys, cfg, policy, SimplStep::Actor::kEnv, idx,
                          steps);
      for (SimplStep step : steps) {
        // Re-resolve the actor index: earlier applications may have
        // inserted configurations below it.
        const auto& cur = cfg.env_cfgs();
        auto it2 = std::lower_bound(cur.begin(), cur.end(), value);
        assert(it2 != cur.end() && *it2 == value);
        step.actor_index = static_cast<std::uint32_t>(it2 - cur.begin());
        StepEffect eff = ApplyStep(sys, cfg, step);
        const bool added =
            eff.actor_fresh ||
            (eff.wrote && eff.wrote_is_env && eff.wrote_fresh);
        if (added) {
          log.push_back(step);
          changed = true;
        }
        if (step.violation && !outcome.violation) {
          outcome.violation = true;
          if (!added) log.push_back(step);
          outcome.violation_log_len = log.size();
        }
        if (added && GoalIn(cfg, goal)) {
          outcome.goal = true;
          return outcome;
        }
      }
    }
  }
  return outcome;
}

SimplResult SimplExplorer::Check(const SimplExplorerOptions& options) {
  reachable_env_de_.clear();
  reachable_dis_de_.clear();
  generated_messages_.clear();
  SimplResult result;
  Budget budget(options.time_budget_ms, options.cancel);

  struct NodeInfo {
    std::int64_t parent;
    // Steps taken from the parent state: for saturating exploration, the
    // dis step followed by the env-saturation log; for plain BFS a single
    // step.
    std::vector<SimplStep> steps;
    int depth;
  };

  std::deque<SimplConfig> states;
  std::vector<NodeInfo> info;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_dis_part;
  std::deque<std::size_t> frontier;

  auto note_config = [&](const SimplConfig& cfg) {
    for (const LocalCfg& c : cfg.env_cfgs()) {
      reachable_env_de_.emplace(c.node.value(), c.rv);
    }
    for (std::size_t i = 0; i < cfg.dis_threads().size(); ++i) {
      const LocalCfg& t = cfg.dis_thread(i);
      reachable_dis_de_.emplace(i, t.node.value(), t.rv);
    }
    for (const EnvMsg& m : cfg.env_msgs()) {
      generated_messages_.emplace(m.var.value(), m.val, true);
    }
    for (std::size_t xi = 0; xi < cfg.num_vars(); ++xi) {
      const auto& seq = cfg.DisMsgsOf(VarId(static_cast<std::uint32_t>(xi)));
      for (std::size_t p = 1; p < seq.size(); ++p) {
        generated_messages_.emplace(static_cast<std::uint32_t>(xi),
                                    seq[p].val, false);
      }
    }
  };

  // Reconstructs the step sequence leading to state `idx`, plus `extra`.
  auto witness_to = [&](std::int64_t idx,
                        const std::vector<SimplStep>& extra) {
    std::vector<std::vector<SimplStep>> chunks;
    chunks.push_back(extra);
    while (idx >= 0) {
      chunks.push_back(info[idx].steps);
      idx = info[idx].parent;
    }
    std::vector<SimplStep> ordered;
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
      ordered.insert(ordered.end(), it->begin(), it->end());
    }
    return ordered;
  };

  auto covered = [&](const SimplConfig& cfg) {
    auto it = by_dis_part.find(cfg.DisPartHash());
    if (it == by_dis_part.end()) return false;
    for (std::size_t id : it->second) {
      if (options.use_covering ? states[id].Covers(cfg)
                               : states[id] == cfg) {
        return true;
      }
    }
    return false;
  };

  // Handles violation/goal outcomes of a saturation pass over the state
  // that will live at `state_idx_hint` (or the root). Returns true if the
  // search should stop now.
  auto absorb_outcome = [&](const SaturationOutcome& outcome,
                            std::int64_t parent,
                            const std::vector<SimplStep>& steps_from_parent,
                            std::size_t states_now) {
    if (!outcome.complete) {
      // Saturation only aborts on budget expiry or external cancel.
      result.exhaustive = false;
      result.budget_hit = budget.hit;
    }
    if (outcome.violation && !result.violation) {
      result.violation = true;
      std::vector<SimplStep> upto(
          steps_from_parent.begin(),
          steps_from_parent.begin() +
              static_cast<std::ptrdiff_t>(outcome.violation_log_len));
      result.witness = witness_to(parent, upto);
      if (options.stop_on_violation && !options.goal.has_value()) {
        result.states = states_now;
        result.exhaustive = false;
        return true;
      }
    }
    if (outcome.goal && !result.goal_reached) {
      result.goal_reached = true;
      result.witness = witness_to(parent, steps_from_parent);
      if (options.stop_on_violation) {
        result.states = states_now;
        result.exhaustive = false;
        return true;
      }
    }
    return false;
  };

  // Root state: saturate the initial configuration.
  {
    SimplConfig init = InitialConfig(sys_);
    std::vector<SimplStep> log;
    SaturationOutcome outcome = SaturateEnv(
        sys_, init, options.policy, options.goal, log, budget);
    states.push_back(std::move(init));
    info.push_back(NodeInfo{-1, std::move(log), 0});
    by_dis_part[states[0].DisPartHash()].push_back(0);
    frontier.push_back(0);
    note_config(states[0]);
    // For the root, witness chunks come from info[0].steps via parent -1:
    // pass them as `extra` against parent -1 explicitly.
    if (outcome.violation || outcome.goal) {
      std::vector<SimplStep> full = info[0].steps;
      SaturationOutcome adj = outcome;
      if (absorb_outcome(adj, -1, full, states.size())) return result;
    }
    if (!outcome.complete) {
      result.exhaustive = false;
      result.budget_hit = budget.hit;
    }
  }

  std::vector<SimplStep> dis_steps;
  while (!frontier.empty()) {
    if (budget.Expired()) {
      result.exhaustive = false;
      result.budget_hit = budget.hit;
      result.states = states.size();
      return result;
    }
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    const int depth = info[cur].depth;
    if (depth > result.depth_reached) result.depth_reached = depth;
    if (depth >= options.max_depth) {
      result.exhaustive = false;
      continue;
    }
    dis_steps.clear();
    for (std::uint32_t i = 0; i < states[cur].dis_threads().size(); ++i) {
      EnumerateActorSteps(sys_, states[cur], options.policy,
                          SimplStep::Actor::kDis, i, dis_steps);
    }
    for (const SimplStep& dstep : dis_steps) {
      SimplConfig next = states[cur];
      ApplyStep(sys_, next, dstep);
      std::vector<SimplStep> log;
      log.push_back(dstep);
      SaturationOutcome outcome = SaturateEnv(
          sys_, next, options.policy, options.goal, log, budget);

      if (dstep.violation && !result.violation) {
        result.violation = true;
        result.witness = witness_to(static_cast<std::int64_t>(cur),
                                    {dstep});
        if (options.stop_on_violation && !options.goal.has_value()) {
          result.states = states.size();
          result.exhaustive = false;
          return result;
        }
      }
      if (absorb_outcome(outcome, static_cast<std::int64_t>(cur), log,
                         states.size())) {
        return result;
      }

      if (covered(next)) continue;

      const std::size_t id = states.size();
      states.push_back(std::move(next));
      info.push_back(NodeInfo{static_cast<std::int64_t>(cur),
                              std::move(log), depth + 1});
      by_dis_part[states[id].DisPartHash()].push_back(id);
      frontier.push_back(id);
      note_config(states[id]);

      if (states.size() >= options.max_states) {
        result.exhaustive = false;
        result.states = states.size();
        return result;
      }
    }
  }
  result.states = states.size();
  return result;
}

std::vector<StepEffect> ReplayWitness(const SimplSystem& sys,
                                      const std::vector<SimplStep>& steps,
                                      SimplConfig* final_cfg) {
  SimplConfig cfg = InitialConfig(sys);
  std::vector<StepEffect> effects;
  effects.reserve(steps.size());
  for (const SimplStep& step : steps) {
    effects.push_back(ApplyStep(sys, cfg, step));
  }
  if (final_cfg != nullptr) *final_cfg = std::move(cfg);
  return effects;
}

}  // namespace rapar
