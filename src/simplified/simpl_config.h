// Abstract configurations of the simplified semantics (§3.4).
//
// An abstract configuration consists of
//   * per variable, the sequence of dis messages in modification order
//     (dense even timestamps, with CAS glue flags),
//   * a monotone set of env messages (odd "gap" timestamps),
//   * a monotone set of reachable env-thread local configurations
//     (justified by the Infinite Supply Lemma 3.3 — see
//     README-semantics.md),
//   * the local configurations of the fixed dis threads.
#ifndef RAPAR_SIMPLIFIED_SIMPL_CONFIG_H_
#define RAPAR_SIMPLIFIED_SIMPL_CONFIG_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "lang/program.h"
#include "ra/view.h"
#include "simplified/abs_time.h"

namespace rapar {

// An env message (x, d, vw) with vw(x) of the form t⁺.
struct EnvMsg {
  VarId var;
  Value val = 0;
  View view;

  AbsTs ts() const { return view[var]; }

  bool operator==(const EnvMsg& o) const {
    return var == o.var && val == o.val && view == o.view;
  }
  bool operator<(const EnvMsg& o) const {
    if (var != o.var) return var < o.var;
    if (val != o.val) return val < o.val;
    return view < o.view;
  }
};

// A dis message; its own timestamp is 2 * (its position).
struct DisMsg {
  Value val = 0;
  View view;
  // CAS adjacency: the gap directly below this message is frozen.
  bool glued = false;

  bool operator==(const DisMsg& o) const {
    return val == o.val && glued == o.glued && view == o.view;
  }
};

// A thread-local configuration (shared shape for env and dis threads).
struct LocalCfg {
  NodeId node;
  std::vector<Value> rv;
  View view;

  bool operator==(const LocalCfg& o) const {
    return node == o.node && rv == o.rv && view == o.view;
  }
  bool operator<(const LocalCfg& o) const {
    if (node != o.node) return node < o.node;
    if (rv != o.rv) return rv < o.rv;
    return view < o.view;
  }
};

class SimplConfig {
 public:
  SimplConfig() = default;
  // Initial abstract configuration: init dis message (timestamp 0, value
  // d_init) per variable; one initial env configuration; dis threads at
  // entry.
  SimplConfig(std::size_t num_vars, std::size_t env_regs,
              const std::vector<std::size_t>& dis_regs);

  std::size_t num_vars() const { return dis_mem_.size(); }

  // --- dis messages -------------------------------------------------------
  const std::vector<DisMsg>& DisMsgsOf(VarId x) const {
    return dis_mem_[x.index()];
  }
  // Number of gaps on x == number of dis messages (gap i sits directly
  // above dis message i; the top gap is NumGaps-1).
  int NumGaps(VarId x) const {
    return static_cast<int>(dis_mem_[x.index()].size());
  }
  // A gap is frozen iff the dis message directly above it is glued.
  bool GapFrozen(VarId x, int gap) const;
  // Smallest unfrozen gap >= `from` (always exists: top gap is unfrozen).
  int NextFreeGap(VarId x, int from) const;

  // Inserts a dis message into gap `gap` on x. `base_view` is the storing
  // thread's (pre-insertion) view, already joined with the CAS load view
  // if applicable. `cas_on_dis` selects the CAS-loading-a-dis-message
  // variant: existing env items of the gap shift above the new message and
  // the new message is glued (gap frozen). Returns the new message's
  // abstract timestamp.
  AbsTs InsertDisMsg(VarId x, int gap, Value val, const View& base_view,
                     bool cas_on_dis);

  // --- env messages and configurations ------------------------------------
  const std::vector<EnvMsg>& env_msgs() const { return env_msgs_; }
  const std::vector<LocalCfg>& env_cfgs() const { return env_cfgs_; }
  // Set insertion; returns true if the element was new.
  bool AddEnvMsg(EnvMsg msg);
  bool AddEnvCfg(LocalCfg cfg);

  // --- dis threads ----------------------------------------------------------
  const std::vector<LocalCfg>& dis_threads() const { return dis_threads_; }
  LocalCfg& dis_thread(std::size_t i) { return dis_threads_[i]; }
  const LocalCfg& dis_thread(std::size_t i) const { return dis_threads_[i]; }

  // --- comparison -----------------------------------------------------------
  bool operator==(const SimplConfig& o) const {
    return dis_mem_ == o.dis_mem_ && env_msgs_ == o.env_msgs_ &&
           env_cfgs_ == o.env_cfgs_ && dis_threads_ == o.dis_threads_;
  }

  // Subsumption: this config enables every behaviour of `o` (equal dis
  // parts, superset env messages and env configurations). Used for
  // covering-based pruning in the explorer.
  bool Covers(const SimplConfig& o) const;
  // True if the dis parts (memory + threads) coincide — the precondition
  // for Covers to be meaningful.
  bool SameDisPart(const SimplConfig& o) const {
    return dis_mem_ == o.dis_mem_ && dis_threads_ == o.dis_threads_;
  }
  std::size_t DisPartHash() const;

  std::size_t Hash() const;

  std::string ToString(const VarTable& vars) const;

 private:
  // Shifts every x-component >= `threshold` by +2 across all views in the
  // configuration (messages, env configs, dis threads).
  void ShiftFrom(VarId x, AbsTs threshold);

  std::vector<std::vector<DisMsg>> dis_mem_;
  std::vector<EnvMsg> env_msgs_;    // sorted, unique
  std::vector<LocalCfg> env_cfgs_;  // sorted, unique
  std::vector<LocalCfg> dis_threads_;
};

struct SimplConfigHash {
  std::size_t operator()(const SimplConfig& c) const { return c.Hash(); }
};

}  // namespace rapar

#endif  // RAPAR_SIMPLIFIED_SIMPL_CONFIG_H_
