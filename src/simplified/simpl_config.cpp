#include "simplified/simpl_config.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/strings.h"

namespace rapar {

SimplConfig::SimplConfig(std::size_t num_vars, std::size_t env_regs,
                         const std::vector<std::size_t>& dis_regs) {
  dis_mem_.resize(num_vars);
  for (auto& seq : dis_mem_) {
    DisMsg init;
    init.val = kInitValue;
    init.view = View(num_vars);
    seq.push_back(std::move(init));
  }
  LocalCfg env_init;
  env_init.node = NodeId(0);
  env_init.rv.assign(env_regs, kInitValue);
  env_init.view = View(num_vars);
  env_cfgs_.push_back(std::move(env_init));
  for (std::size_t regs : dis_regs) {
    LocalCfg d;
    d.node = NodeId(0);
    d.rv.assign(regs, kInitValue);
    d.view = View(num_vars);
    dis_threads_.push_back(std::move(d));
  }
}

bool SimplConfig::GapFrozen(VarId x, int gap) const {
  const auto& seq = dis_mem_[x.index()];
  const std::size_t above = static_cast<std::size_t>(gap) + 1;
  return above < seq.size() && seq[above].glued;
}

int SimplConfig::NextFreeGap(VarId x, int from) const {
  int gap = from;
  while (GapFrozen(x, gap)) ++gap;
  assert(gap < NumGaps(x));
  return gap;
}

void SimplConfig::ShiftFrom(VarId x, AbsTs threshold) {
  const std::size_t xi = x.index();
  for (auto& seq : dis_mem_) {
    for (DisMsg& m : seq) {
      if (m.view.Slot(xi) >= threshold) m.view.Slot(xi) += 2;
    }
  }
  for (EnvMsg& m : env_msgs_) {
    if (m.view.Slot(xi) >= threshold) m.view.Slot(xi) += 2;
  }
  for (LocalCfg& c : env_cfgs_) {
    if (c.view.Slot(xi) >= threshold) c.view.Slot(xi) += 2;
  }
  for (LocalCfg& t : dis_threads_) {
    if (t.view.Slot(xi) >= threshold) t.view.Slot(xi) += 2;
  }
}

AbsTs SimplConfig::InsertDisMsg(VarId x, int gap, Value val,
                                const View& base_view, bool cas_on_dis) {
  assert(gap >= 0 && gap < NumGaps(x));
  assert(!GapFrozen(x, gap));
  const std::size_t xi = x.index();
  const AbsTs new_ts = DisTs(gap + 1);
  // Plain store: the new message sits above the gap's env items, so only
  // components strictly above the gap shift. CAS on the dis message below:
  // adjacency pushes the gap's env items above the new message too.
  const AbsTs threshold = cas_on_dis ? PlusTs(gap) : DisTs(gap + 1);
  View msg_view = base_view;  // capture before renumbering
  ShiftFrom(x, threshold);
  if (msg_view.Slot(xi) >= threshold) msg_view.Slot(xi) += 2;
  msg_view.Set(x, new_ts);

  DisMsg msg;
  msg.val = val;
  msg.view = std::move(msg_view);
  msg.glued = cas_on_dis;
  auto& seq = dis_mem_[xi];
  seq.insert(seq.begin() + (gap + 1), std::move(msg));

  // Invariant: dis message i on x has view(x) == 2i.
  for (std::size_t i = 0; i < seq.size(); ++i) {
    assert(seq[i].view[x] == DisTs(static_cast<int>(i)));
  }
  return new_ts;
}

bool SimplConfig::AddEnvMsg(EnvMsg msg) {
  auto it = std::lower_bound(env_msgs_.begin(), env_msgs_.end(), msg);
  if (it != env_msgs_.end() && *it == msg) return false;
  env_msgs_.insert(it, std::move(msg));
  return true;
}

bool SimplConfig::AddEnvCfg(LocalCfg cfg) {
  auto it = std::lower_bound(env_cfgs_.begin(), env_cfgs_.end(), cfg);
  if (it != env_cfgs_.end() && *it == cfg) return false;
  env_cfgs_.insert(it, std::move(cfg));
  return true;
}

bool SimplConfig::Covers(const SimplConfig& o) const {
  if (!SameDisPart(o)) return false;
  return std::includes(env_msgs_.begin(), env_msgs_.end(),
                       o.env_msgs_.begin(), o.env_msgs_.end()) &&
         std::includes(env_cfgs_.begin(), env_cfgs_.end(),
                       o.env_cfgs_.begin(), o.env_cfgs_.end());
}

std::size_t SimplConfig::DisPartHash() const {
  std::size_t seed = 0x5eed5eed;
  for (const auto& seq : dis_mem_) {
    HashCombine(seed, seq.size());
    for (const DisMsg& m : seq) {
      HashCombine(seed, static_cast<std::size_t>(m.val));
      HashCombine(seed, m.view.Hash());
      HashCombine(seed, m.glued ? 1u : 0u);
    }
  }
  for (const LocalCfg& t : dis_threads_) {
    HashCombine(seed, t.node.value());
    HashCombine(seed, HashRange(t.rv));
    HashCombine(seed, t.view.Hash());
  }
  return seed;
}

std::size_t SimplConfig::Hash() const {
  std::size_t seed = DisPartHash();
  for (const EnvMsg& m : env_msgs_) {
    HashCombine(seed, m.var.value());
    HashCombine(seed, static_cast<std::size_t>(m.val));
    HashCombine(seed, m.view.Hash());
  }
  for (const LocalCfg& c : env_cfgs_) {
    HashCombine(seed, c.node.value());
    HashCombine(seed, HashRange(c.rv));
    HashCombine(seed, c.view.Hash());
  }
  return seed;
}

namespace {

std::string AbsViewToString(const View& view, const VarTable& vars) {
  std::string out = "{";
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(vars.Name(VarId(static_cast<std::uint32_t>(i))), "->",
                  AbsTsToString(view.Slot(i)));
  }
  return out + "}";
}

std::string RvToString(const std::vector<Value>& rv) {
  std::string out = "[";
  for (std::size_t i = 0; i < rv.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(rv[i]);
  }
  return out + "]";
}

}  // namespace

std::string SimplConfig::ToString(const VarTable& vars) const {
  std::string out = "dis memory:\n";
  for (std::size_t xi = 0; xi < dis_mem_.size(); ++xi) {
    out += StrCat("  ", vars.Name(VarId(static_cast<std::uint32_t>(xi))),
                  ": ");
    for (const DisMsg& m : dis_mem_[xi]) {
      out += StrCat("[", AbsTsToString(m.view.Slot(xi)),
                    m.glued ? "g" : "", ": ", m.val, " ",
                    AbsViewToString(m.view, vars), "] ");
    }
    out += "\n";
  }
  out += "env messages:\n";
  for (const EnvMsg& m : env_msgs_) {
    out += StrCat("  (", vars.Name(m.var), ", ", m.val, ", ",
                  AbsViewToString(m.view, vars), ")\n");
  }
  out += "env configs:\n";
  for (const LocalCfg& c : env_cfgs_) {
    out += StrCat("  n", c.node.value(), " rv=", RvToString(c.rv),
                  " vw=", AbsViewToString(c.view, vars), "\n");
  }
  out += "dis threads:\n";
  for (std::size_t i = 0; i < dis_threads_.size(); ++i) {
    const LocalCfg& t = dis_threads_[i];
    out += StrCat("  d", i, ": n", t.node.value(), " rv=", RvToString(t.rv),
                  " vw=", AbsViewToString(t.view, vars), "\n");
  }
  return out;
}

}  // namespace rapar
