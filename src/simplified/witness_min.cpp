#include "simplified/witness_min.h"

#include <algorithm>

namespace rapar {

bool StepEnabled(const SimplSystem& sys, const SimplConfig& cfg,
                 const SimplStep& step) {
  const bool is_env = step.actor == SimplStep::Actor::kEnv;
  // Actor exists.
  if (is_env) {
    if (step.actor_index >= cfg.env_cfgs().size()) return false;
  } else {
    if (step.actor_index >= cfg.dis_threads().size()) return false;
  }
  const Cfa& cfa = is_env ? *sys.env : *sys.dis[step.actor_index];
  const LocalCfg& lc = is_env ? cfg.env_cfgs()[step.actor_index]
                              : cfg.dis_thread(step.actor_index);
  // Edge exists and leaves the actor's control location.
  if (step.edge >= cfa.edges().size()) return false;
  const CfaEdge& edge = cfa.Edge(EdgeId(step.edge));
  if (edge.from != lc.node) return false;
  const Instr& instr = edge.instr;

  auto msg_read_ok = [&](VarId x, Value expected_match,
                         bool value_matters) -> bool {
    if (step.read_kind == SimplStep::ReadKind::kDisMsg) {
      const auto& seq = cfg.DisMsgsOf(x);
      if (step.read_pos < 0 ||
          step.read_pos >= static_cast<std::int32_t>(seq.size())) {
        return false;
      }
      const DisMsg& msg = seq[step.read_pos];
      if (value_matters && msg.val != expected_match) return false;
      return msg.view[x] >= lc.view[x];
    }
    if (step.read_kind == SimplStep::ReadKind::kEnvMsg) {
      const auto& msgs = cfg.env_msgs();
      if (step.read_pos < 0 ||
          step.read_pos >= static_cast<std::int32_t>(msgs.size())) {
        return false;
      }
      const EnvMsg& msg = msgs[step.read_pos];
      if (msg.var != x) return false;
      if (value_matters && msg.val != expected_match) return false;
      // Clone-promotion gap constraints.
      if (step.gap < std::max(GapOf(lc.view[x]), GapOf(msg.ts()))) {
        return false;
      }
      if (step.gap >= cfg.NumGaps(x)) return false;
      return !cfg.GapFrozen(x, step.gap);
    }
    return false;
  };

  switch (instr.kind) {
    case Instr::Kind::kNop:
    case Instr::Kind::kAssign:
    case Instr::Kind::kAssertFail:
      return true;
    case Instr::Kind::kAssume:
      return instr.expr->Eval(lc.rv, sys.dom) != 0;
    case Instr::Kind::kLoad:
      return msg_read_ok(instr.var, 0, /*value_matters=*/false);
    case Instr::Kind::kStore: {
      const VarId x = instr.var;
      if (step.gap < GapOf(lc.view[x]) || step.gap >= cfg.NumGaps(x)) {
        return false;
      }
      return !cfg.GapFrozen(x, step.gap);
    }
    case Instr::Kind::kCas: {
      if (is_env) return false;
      const VarId x = instr.var;
      const Value expected = lc.rv[instr.reg.index()];
      if (step.read_kind == SimplStep::ReadKind::kDisMsg) {
        const auto& seq = cfg.DisMsgsOf(x);
        if (step.read_pos < 0 ||
            step.read_pos >= static_cast<std::int32_t>(seq.size())) {
          return false;
        }
        const DisMsg& msg = seq[step.read_pos];
        return msg.val == expected && msg.view[x] >= lc.view[x] &&
               !cfg.GapFrozen(x, step.read_pos);
      }
      return msg_read_ok(x, expected, /*value_matters=*/true);
    }
  }
  return false;
}

bool TryReplay(const SimplSystem& sys, const std::vector<SimplStep>& steps,
               SimplConfig* final_cfg) {
  SimplConfig cfg = InitialConfig(sys);
  for (const SimplStep& step : steps) {
    if (!StepEnabled(sys, cfg, step)) return false;
    ApplyStep(sys, cfg, step);
  }
  if (final_cfg != nullptr) *final_cfg = std::move(cfg);
  return true;
}

namespace {

// Steps referenced by *value* rather than by container index, so that
// removing an earlier step does not invalidate later references: the env
// actor is its local configuration, an env message read is the message
// itself. (Dis reads stay positional: dis memory layout rarely changes
// during minimisation, and any drift is caught by the validity checks.)
struct SemStep {
  SimplStep proto;     // actor kind, dis index, edge, gap, violation
  LocalCfg env_actor;  // valid when proto.actor == kEnv
  EnvMsg env_read;     // valid when proto.read_kind == kEnvMsg
};

// Converts an index-based witness into semantic steps (one replay).
std::vector<SemStep> ToSemantic(const SimplSystem& sys,
                                const std::vector<SimplStep>& steps) {
  std::vector<SemStep> out;
  out.reserve(steps.size());
  SimplConfig cfg = InitialConfig(sys);
  for (const SimplStep& step : steps) {
    SemStep sem;
    sem.proto = step;
    if (step.actor == SimplStep::Actor::kEnv) {
      sem.env_actor = cfg.env_cfgs()[step.actor_index];
    }
    if (step.read_kind == SimplStep::ReadKind::kEnvMsg) {
      sem.env_read = cfg.env_msgs()[step.read_pos];
    }
    out.push_back(std::move(sem));
    ApplyStep(sys, cfg, step);
  }
  return out;
}

// Replays semantic steps, re-resolving indices against the current
// configuration. Returns false when a reference cannot be resolved or a
// step is disabled; on success optionally returns the concrete steps and
// the final configuration.
bool SemReplay(const SimplSystem& sys, const std::vector<SemStep>& sem,
               std::vector<SimplStep>* concrete, SimplConfig* final_cfg) {
  SimplConfig cfg = InitialConfig(sys);
  if (concrete != nullptr) concrete->clear();
  for (const SemStep& s : sem) {
    SimplStep step = s.proto;
    if (step.actor == SimplStep::Actor::kEnv) {
      const auto& cfgs = cfg.env_cfgs();
      auto it = std::lower_bound(cfgs.begin(), cfgs.end(), s.env_actor);
      if (it == cfgs.end() || !(*it == s.env_actor)) return false;
      step.actor_index = static_cast<std::uint32_t>(it - cfgs.begin());
    }
    if (step.read_kind == SimplStep::ReadKind::kEnvMsg) {
      const auto& msgs = cfg.env_msgs();
      auto it = std::lower_bound(msgs.begin(), msgs.end(), s.env_read);
      if (it == msgs.end() || !(*it == s.env_read)) return false;
      step.read_pos = static_cast<std::int32_t>(it - msgs.begin());
    }
    if (!StepEnabled(sys, cfg, step)) return false;
    ApplyStep(sys, cfg, step);
    if (concrete != nullptr) concrete->push_back(step);
  }
  if (final_cfg != nullptr) *final_cfg = std::move(cfg);
  return true;
}

}  // namespace

std::vector<SimplStep> MinimizeWitness(const SimplSystem& sys,
                                       std::vector<SimplStep> steps,
                                       const WitnessProperty& property) {
  {
    SimplConfig final_cfg;
    if (!TryReplay(sys, steps, &final_cfg) ||
        !property(final_cfg, steps)) {
      return steps;  // refuse to "minimise" invalid input
    }
  }
  std::vector<SemStep> sem = ToSemantic(sys, steps);

  auto valid = [&](const std::vector<SemStep>& candidate) {
    std::vector<SimplStep> concrete;
    SimplConfig final_cfg;
    return SemReplay(sys, candidate, &concrete, &final_cfg) &&
           property(final_cfg, concrete);
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = sem.size(); i-- > 0;) {
      std::vector<SemStep> candidate;
      candidate.reserve(sem.size() - 1);
      candidate.insert(candidate.end(), sem.begin(),
                       sem.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(),
                       sem.begin() + static_cast<std::ptrdiff_t>(i + 1),
                       sem.end());
      if (valid(candidate)) {
        sem = std::move(candidate);
        changed = true;
      }
    }
  }
  std::vector<SimplStep> out;
  SemReplay(sys, sem, &out, nullptr);
  return out;
}

WitnessProperty ViolationProperty() {
  return [](const SimplConfig&, const std::vector<SimplStep>& steps) {
    return !steps.empty() && steps.back().violation;
  };
}

WitnessProperty GoalProperty(VarId var, Value val) {
  return [var, val](const SimplConfig& cfg,
                    const std::vector<SimplStep>&) {
    for (const EnvMsg& m : cfg.env_msgs()) {
      if (m.var == var && m.val == val) return true;
    }
    const auto& seq = cfg.DisMsgsOf(var);
    for (std::size_t p = 1; p < seq.size(); ++p) {
      if (seq[p].val == val) return true;
    }
    return false;
  };
}

}  // namespace rapar
