// Abstract timestamps N ∪ N⁺ of the simplified semantics (§3.4), encoded
// in integers: 2t is the dis timestamp t, 2t+1 is t⁺ (the env "gap" above
// dis store t). The natural integer order realises 0 < 0⁺ < 1 < 1⁺ < ….
#ifndef RAPAR_SIMPLIFIED_ABS_TIME_H_
#define RAPAR_SIMPLIFIED_ABS_TIME_H_

#include <string>

#include "ra/view.h"

namespace rapar {

// Abstract timestamps reuse the Timestamp/View machinery of ra/.
using AbsTs = Timestamp;

// The dis timestamp t as an abstract value.
constexpr AbsTs DisTs(int t) { return 2 * t; }
// The env timestamp t⁺ as an abstract value.
constexpr AbsTs PlusTs(int gap) { return 2 * gap + 1; }

constexpr bool IsPlus(AbsTs ts) { return (ts & 1) != 0; }
constexpr bool IsDis(AbsTs ts) { return (ts & 1) == 0; }

// The gap that `ts` belongs to / sits directly above: gap(2t) = gap(2t+1)
// = t. A thread with view 2t or 2t+1 may produce env messages in gaps
// >= t.
constexpr int GapOf(AbsTs ts) { return ts / 2; }

// Renders "3" or "3+" for logs and goldens.
inline std::string AbsTsToString(AbsTs ts) {
  std::string s = std::to_string(GapOf(ts));
  if (IsPlus(ts)) s += "+";
  return s;
}

}  // namespace rapar

#endif  // RAPAR_SIMPLIFIED_ABS_TIME_H_
