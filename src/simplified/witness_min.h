// Witness minimisation.
//
// The saturating explorer logs every env-saturation step it applies, so
// witnesses contain messages and clone configurations irrelevant to the
// violation. Greedy delta-debugging removes steps while the run stays
// valid and the target property still holds — producing witnesses close
// to the paper's hand-drawn executions.
#ifndef RAPAR_SIMPLIFIED_WITNESS_MIN_H_
#define RAPAR_SIMPLIFIED_WITNESS_MIN_H_

#include <functional>
#include <vector>

#include "simplified/explorer.h"

namespace rapar {

// True iff `step` is enabled in `cfg` (same conditions EnumerateSteps
// uses; never asserts). Used to re-validate candidate witnesses.
bool StepEnabled(const SimplSystem& sys, const SimplConfig& cfg,
                 const SimplStep& step);

// Replays `steps`; returns false as soon as a step is disabled. On
// success fills *final_cfg (if non-null).
bool TryReplay(const SimplSystem& sys, const std::vector<SimplStep>& steps,
               SimplConfig* final_cfg);

// The property the minimised witness must preserve, evaluated on the
// final configuration and the step list (e.g. "last step is a violation"
// or "goal message present").
using WitnessProperty =
    std::function<bool(const SimplConfig&, const std::vector<SimplStep>&)>;

// Greedily removes steps (earliest-first passes until fixpoint) while the
// replay stays valid and `property` holds. The input witness must itself
// replay and satisfy the property.
std::vector<SimplStep> MinimizeWitness(const SimplSystem& sys,
                                       std::vector<SimplStep> steps,
                                       const WitnessProperty& property);

// Ready-made properties.
WitnessProperty ViolationProperty();
WitnessProperty GoalProperty(VarId var, Value val);

}  // namespace rapar

#endif  // RAPAR_SIMPLIFIED_WITNESS_MIN_H_
