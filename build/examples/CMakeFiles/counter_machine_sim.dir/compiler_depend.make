# Empty compiler generated dependencies file for counter_machine_sim.
# This may be replaced when dependencies are built.
