file(REMOVE_RECURSE
  "CMakeFiles/counter_machine_sim.dir/counter_machine_sim.cpp.o"
  "CMakeFiles/counter_machine_sim.dir/counter_machine_sim.cpp.o.d"
  "counter_machine_sim"
  "counter_machine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_machine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
