# Empty compiler generated dependencies file for rapar_cli.
# This may be replaced when dependencies are built.
