file(REMOVE_RECURSE
  "CMakeFiles/rapar_cli.dir/rapar_cli.cpp.o"
  "CMakeFiles/rapar_cli.dir/rapar_cli.cpp.o.d"
  "rapar_cli"
  "rapar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
