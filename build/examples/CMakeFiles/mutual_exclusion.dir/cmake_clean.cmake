file(REMOVE_RECURSE
  "CMakeFiles/mutual_exclusion.dir/mutual_exclusion.cpp.o"
  "CMakeFiles/mutual_exclusion.dir/mutual_exclusion.cpp.o.d"
  "mutual_exclusion"
  "mutual_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
