# Empty compiler generated dependencies file for mutual_exclusion.
# This may be replaced when dependencies are built.
