# Empty compiler generated dependencies file for cost_analysis.
# This may be replaced when dependencies are built.
