file(REMOVE_RECURSE
  "CMakeFiles/cost_analysis.dir/cost_analysis.cpp.o"
  "CMakeFiles/cost_analysis.dir/cost_analysis.cpp.o.d"
  "cost_analysis"
  "cost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
