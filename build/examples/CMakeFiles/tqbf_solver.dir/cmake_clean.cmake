file(REMOVE_RECURSE
  "CMakeFiles/tqbf_solver.dir/tqbf_solver.cpp.o"
  "CMakeFiles/tqbf_solver.dir/tqbf_solver.cpp.o.d"
  "tqbf_solver"
  "tqbf_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tqbf_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
