# Empty dependencies file for tqbf_solver.
# This may be replaced when dependencies are built.
