
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplified/explorer.cpp" "src/simplified/CMakeFiles/rapar_simpl.dir/explorer.cpp.o" "gcc" "src/simplified/CMakeFiles/rapar_simpl.dir/explorer.cpp.o.d"
  "/root/repo/src/simplified/simpl_config.cpp" "src/simplified/CMakeFiles/rapar_simpl.dir/simpl_config.cpp.o" "gcc" "src/simplified/CMakeFiles/rapar_simpl.dir/simpl_config.cpp.o.d"
  "/root/repo/src/simplified/transitions.cpp" "src/simplified/CMakeFiles/rapar_simpl.dir/transitions.cpp.o" "gcc" "src/simplified/CMakeFiles/rapar_simpl.dir/transitions.cpp.o.d"
  "/root/repo/src/simplified/witness_min.cpp" "src/simplified/CMakeFiles/rapar_simpl.dir/witness_min.cpp.o" "gcc" "src/simplified/CMakeFiles/rapar_simpl.dir/witness_min.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ra/CMakeFiles/rapar_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/rapar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rapar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
