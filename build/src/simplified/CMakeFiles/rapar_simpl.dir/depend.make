# Empty dependencies file for rapar_simpl.
# This may be replaced when dependencies are built.
