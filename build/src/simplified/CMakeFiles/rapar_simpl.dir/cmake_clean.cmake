file(REMOVE_RECURSE
  "CMakeFiles/rapar_simpl.dir/explorer.cpp.o"
  "CMakeFiles/rapar_simpl.dir/explorer.cpp.o.d"
  "CMakeFiles/rapar_simpl.dir/simpl_config.cpp.o"
  "CMakeFiles/rapar_simpl.dir/simpl_config.cpp.o.d"
  "CMakeFiles/rapar_simpl.dir/transitions.cpp.o"
  "CMakeFiles/rapar_simpl.dir/transitions.cpp.o.d"
  "CMakeFiles/rapar_simpl.dir/witness_min.cpp.o"
  "CMakeFiles/rapar_simpl.dir/witness_min.cpp.o.d"
  "librapar_simpl.a"
  "librapar_simpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_simpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
