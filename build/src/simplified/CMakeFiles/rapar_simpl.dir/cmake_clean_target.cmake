file(REMOVE_RECURSE
  "librapar_simpl.a"
)
