file(REMOVE_RECURSE
  "librapar_datalog.a"
)
