file(REMOVE_RECURSE
  "CMakeFiles/rapar_datalog.dir/ast.cpp.o"
  "CMakeFiles/rapar_datalog.dir/ast.cpp.o.d"
  "CMakeFiles/rapar_datalog.dir/cache.cpp.o"
  "CMakeFiles/rapar_datalog.dir/cache.cpp.o.d"
  "CMakeFiles/rapar_datalog.dir/cache_to_linear.cpp.o"
  "CMakeFiles/rapar_datalog.dir/cache_to_linear.cpp.o.d"
  "CMakeFiles/rapar_datalog.dir/engine.cpp.o"
  "CMakeFiles/rapar_datalog.dir/engine.cpp.o.d"
  "librapar_datalog.a"
  "librapar_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
