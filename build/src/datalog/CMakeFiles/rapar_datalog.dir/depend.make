# Empty dependencies file for rapar_datalog.
# This may be replaced when dependencies are built.
