
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cpp" "src/datalog/CMakeFiles/rapar_datalog.dir/ast.cpp.o" "gcc" "src/datalog/CMakeFiles/rapar_datalog.dir/ast.cpp.o.d"
  "/root/repo/src/datalog/cache.cpp" "src/datalog/CMakeFiles/rapar_datalog.dir/cache.cpp.o" "gcc" "src/datalog/CMakeFiles/rapar_datalog.dir/cache.cpp.o.d"
  "/root/repo/src/datalog/cache_to_linear.cpp" "src/datalog/CMakeFiles/rapar_datalog.dir/cache_to_linear.cpp.o" "gcc" "src/datalog/CMakeFiles/rapar_datalog.dir/cache_to_linear.cpp.o.d"
  "/root/repo/src/datalog/engine.cpp" "src/datalog/CMakeFiles/rapar_datalog.dir/engine.cpp.o" "gcc" "src/datalog/CMakeFiles/rapar_datalog.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
