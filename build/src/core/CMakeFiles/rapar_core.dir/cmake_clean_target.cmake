file(REMOVE_RECURSE
  "librapar_core.a"
)
