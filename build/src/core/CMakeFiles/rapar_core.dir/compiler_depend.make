# Empty compiler generated dependencies file for rapar_core.
# This may be replaced when dependencies are built.
