file(REMOVE_RECURSE
  "CMakeFiles/rapar_core.dir/benchmarks.cpp.o"
  "CMakeFiles/rapar_core.dir/benchmarks.cpp.o.d"
  "CMakeFiles/rapar_core.dir/param_system.cpp.o"
  "CMakeFiles/rapar_core.dir/param_system.cpp.o.d"
  "CMakeFiles/rapar_core.dir/trace_render.cpp.o"
  "CMakeFiles/rapar_core.dir/trace_render.cpp.o.d"
  "CMakeFiles/rapar_core.dir/verifier.cpp.o"
  "CMakeFiles/rapar_core.dir/verifier.cpp.o.d"
  "librapar_core.a"
  "librapar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
