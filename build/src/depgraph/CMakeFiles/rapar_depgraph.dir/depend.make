# Empty dependencies file for rapar_depgraph.
# This may be replaced when dependencies are built.
