file(REMOVE_RECURSE
  "CMakeFiles/rapar_depgraph.dir/dep_graph.cpp.o"
  "CMakeFiles/rapar_depgraph.dir/dep_graph.cpp.o.d"
  "librapar_depgraph.a"
  "librapar_depgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
