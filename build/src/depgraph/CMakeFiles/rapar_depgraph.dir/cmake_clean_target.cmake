file(REMOVE_RECURSE
  "librapar_depgraph.a"
)
