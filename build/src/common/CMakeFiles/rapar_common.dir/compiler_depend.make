# Empty compiler generated dependencies file for rapar_common.
# This may be replaced when dependencies are built.
