file(REMOVE_RECURSE
  "librapar_common.a"
)
