file(REMOVE_RECURSE
  "CMakeFiles/rapar_common.dir/hash.cpp.o"
  "CMakeFiles/rapar_common.dir/hash.cpp.o.d"
  "CMakeFiles/rapar_common.dir/strings.cpp.o"
  "CMakeFiles/rapar_common.dir/strings.cpp.o.d"
  "librapar_common.a"
  "librapar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
