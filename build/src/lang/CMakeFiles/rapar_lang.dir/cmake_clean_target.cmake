file(REMOVE_RECURSE
  "librapar_lang.a"
)
