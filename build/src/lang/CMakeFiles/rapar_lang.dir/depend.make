# Empty dependencies file for rapar_lang.
# This may be replaced when dependencies are built.
