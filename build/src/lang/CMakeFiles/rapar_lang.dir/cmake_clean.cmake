file(REMOVE_RECURSE
  "CMakeFiles/rapar_lang.dir/ast.cpp.o"
  "CMakeFiles/rapar_lang.dir/ast.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/cfa.cpp.o"
  "CMakeFiles/rapar_lang.dir/cfa.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/classify.cpp.o"
  "CMakeFiles/rapar_lang.dir/classify.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/expr.cpp.o"
  "CMakeFiles/rapar_lang.dir/expr.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/parser.cpp.o"
  "CMakeFiles/rapar_lang.dir/parser.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/program.cpp.o"
  "CMakeFiles/rapar_lang.dir/program.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/random_program.cpp.o"
  "CMakeFiles/rapar_lang.dir/random_program.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/transform.cpp.o"
  "CMakeFiles/rapar_lang.dir/transform.cpp.o.d"
  "CMakeFiles/rapar_lang.dir/unroll.cpp.o"
  "CMakeFiles/rapar_lang.dir/unroll.cpp.o.d"
  "librapar_lang.a"
  "librapar_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
