
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cpp" "src/lang/CMakeFiles/rapar_lang.dir/ast.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/ast.cpp.o.d"
  "/root/repo/src/lang/cfa.cpp" "src/lang/CMakeFiles/rapar_lang.dir/cfa.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/cfa.cpp.o.d"
  "/root/repo/src/lang/classify.cpp" "src/lang/CMakeFiles/rapar_lang.dir/classify.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/classify.cpp.o.d"
  "/root/repo/src/lang/expr.cpp" "src/lang/CMakeFiles/rapar_lang.dir/expr.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/expr.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/rapar_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/program.cpp" "src/lang/CMakeFiles/rapar_lang.dir/program.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/program.cpp.o.d"
  "/root/repo/src/lang/random_program.cpp" "src/lang/CMakeFiles/rapar_lang.dir/random_program.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/random_program.cpp.o.d"
  "/root/repo/src/lang/transform.cpp" "src/lang/CMakeFiles/rapar_lang.dir/transform.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/transform.cpp.o.d"
  "/root/repo/src/lang/unroll.cpp" "src/lang/CMakeFiles/rapar_lang.dir/unroll.cpp.o" "gcc" "src/lang/CMakeFiles/rapar_lang.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rapar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
