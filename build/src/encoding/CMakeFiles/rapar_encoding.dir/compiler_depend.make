# Empty compiler generated dependencies file for rapar_encoding.
# This may be replaced when dependencies are built.
