file(REMOVE_RECURSE
  "CMakeFiles/rapar_encoding.dir/datalog_verifier.cpp.o"
  "CMakeFiles/rapar_encoding.dir/datalog_verifier.cpp.o.d"
  "CMakeFiles/rapar_encoding.dir/dis_guess.cpp.o"
  "CMakeFiles/rapar_encoding.dir/dis_guess.cpp.o.d"
  "CMakeFiles/rapar_encoding.dir/makep.cpp.o"
  "CMakeFiles/rapar_encoding.dir/makep.cpp.o.d"
  "librapar_encoding.a"
  "librapar_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
