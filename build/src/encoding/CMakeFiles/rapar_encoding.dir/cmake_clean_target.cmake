file(REMOVE_RECURSE
  "librapar_encoding.a"
)
