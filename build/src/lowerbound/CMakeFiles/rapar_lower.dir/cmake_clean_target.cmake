file(REMOVE_RECURSE
  "librapar_lower.a"
)
