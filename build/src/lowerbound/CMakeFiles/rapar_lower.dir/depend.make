# Empty dependencies file for rapar_lower.
# This may be replaced when dependencies are built.
