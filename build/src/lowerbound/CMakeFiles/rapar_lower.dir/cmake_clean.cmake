file(REMOVE_RECURSE
  "CMakeFiles/rapar_lower.dir/counter_machine.cpp.o"
  "CMakeFiles/rapar_lower.dir/counter_machine.cpp.o.d"
  "CMakeFiles/rapar_lower.dir/qbf.cpp.o"
  "CMakeFiles/rapar_lower.dir/qbf.cpp.o.d"
  "CMakeFiles/rapar_lower.dir/tqbf_reduction.cpp.o"
  "CMakeFiles/rapar_lower.dir/tqbf_reduction.cpp.o.d"
  "librapar_lower.a"
  "librapar_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
