file(REMOVE_RECURSE
  "CMakeFiles/rapar_ra.dir/config.cpp.o"
  "CMakeFiles/rapar_ra.dir/config.cpp.o.d"
  "CMakeFiles/rapar_ra.dir/explorer.cpp.o"
  "CMakeFiles/rapar_ra.dir/explorer.cpp.o.d"
  "CMakeFiles/rapar_ra.dir/view.cpp.o"
  "CMakeFiles/rapar_ra.dir/view.cpp.o.d"
  "librapar_ra.a"
  "librapar_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapar_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
