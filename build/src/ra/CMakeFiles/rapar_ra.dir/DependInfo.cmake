
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/config.cpp" "src/ra/CMakeFiles/rapar_ra.dir/config.cpp.o" "gcc" "src/ra/CMakeFiles/rapar_ra.dir/config.cpp.o.d"
  "/root/repo/src/ra/explorer.cpp" "src/ra/CMakeFiles/rapar_ra.dir/explorer.cpp.o" "gcc" "src/ra/CMakeFiles/rapar_ra.dir/explorer.cpp.o.d"
  "/root/repo/src/ra/view.cpp" "src/ra/CMakeFiles/rapar_ra.dir/view.cpp.o" "gcc" "src/ra/CMakeFiles/rapar_ra.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/rapar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rapar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
