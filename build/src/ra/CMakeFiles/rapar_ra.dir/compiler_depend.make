# Empty compiler generated dependencies file for rapar_ra.
# This may be replaced when dependencies are built.
