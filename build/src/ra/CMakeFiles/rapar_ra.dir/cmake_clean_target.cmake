file(REMOVE_RECURSE
  "librapar_ra.a"
)
