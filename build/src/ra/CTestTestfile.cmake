# CMake generated Testfile for 
# Source directory: /root/repo/src/ra
# Build directory: /root/repo/build/src/ra
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
