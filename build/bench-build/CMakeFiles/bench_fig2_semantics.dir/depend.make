# Empty dependencies file for bench_fig2_semantics.
# This may be replaced when dependencies are built.
