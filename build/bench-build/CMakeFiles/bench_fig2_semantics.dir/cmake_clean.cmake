file(REMOVE_RECURSE
  "../bench/bench_fig2_semantics"
  "../bench/bench_fig2_semantics.pdb"
  "CMakeFiles/bench_fig2_semantics.dir/bench_fig2_semantics.cpp.o"
  "CMakeFiles/bench_fig2_semantics.dir/bench_fig2_semantics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
