file(REMOVE_RECURSE
  "../bench/bench_fig6_tqbf"
  "../bench/bench_fig6_tqbf.pdb"
  "CMakeFiles/bench_fig6_tqbf.dir/bench_fig6_tqbf.cpp.o"
  "CMakeFiles/bench_fig6_tqbf.dir/bench_fig6_tqbf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tqbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
