# Empty dependencies file for bench_fig3_simplified.
# This may be replaced when dependencies are built.
