file(REMOVE_RECURSE
  "../bench/bench_fig3_simplified"
  "../bench/bench_fig3_simplified.pdb"
  "CMakeFiles/bench_fig3_simplified.dir/bench_fig3_simplified.cpp.o"
  "CMakeFiles/bench_fig3_simplified.dir/bench_fig3_simplified.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_simplified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
