file(REMOVE_RECURSE
  "../bench/bench_fig1_ra_exec"
  "../bench/bench_fig1_ra_exec.pdb"
  "CMakeFiles/bench_fig1_ra_exec.dir/bench_fig1_ra_exec.cpp.o"
  "CMakeFiles/bench_fig1_ra_exec.dir/bench_fig1_ra_exec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ra_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
