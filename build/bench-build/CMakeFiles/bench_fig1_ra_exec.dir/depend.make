# Empty dependencies file for bench_fig1_ra_exec.
# This may be replaced when dependencies are built.
