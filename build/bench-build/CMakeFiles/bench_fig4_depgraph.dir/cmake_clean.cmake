file(REMOVE_RECURSE
  "../bench/bench_fig4_depgraph"
  "../bench/bench_fig4_depgraph.pdb"
  "CMakeFiles/bench_fig4_depgraph.dir/bench_fig4_depgraph.cpp.o"
  "CMakeFiles/bench_fig4_depgraph.dir/bench_fig4_depgraph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
