file(REMOVE_RECURSE
  "../bench/bench_ablation"
  "../bench/bench_ablation.pdb"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
