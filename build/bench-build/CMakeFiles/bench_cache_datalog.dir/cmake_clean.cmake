file(REMOVE_RECURSE
  "../bench/bench_cache_datalog"
  "../bench/bench_cache_datalog.pdb"
  "CMakeFiles/bench_cache_datalog.dir/bench_cache_datalog.cpp.o"
  "CMakeFiles/bench_cache_datalog.dir/bench_cache_datalog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
