# Empty compiler generated dependencies file for bench_cache_datalog.
# This may be replaced when dependencies are built.
