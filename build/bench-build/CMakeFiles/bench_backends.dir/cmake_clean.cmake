file(REMOVE_RECURSE
  "../bench/bench_backends"
  "../bench/bench_backends.pdb"
  "CMakeFiles/bench_backends.dir/bench_backends.cpp.o"
  "CMakeFiles/bench_backends.dir/bench_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
