# Empty compiler generated dependencies file for bench_backends.
# This may be replaced when dependencies are built.
