file(REMOVE_RECURSE
  "../bench/bench_fig5_cost"
  "../bench/bench_fig5_cost.pdb"
  "CMakeFiles/bench_fig5_cost.dir/bench_fig5_cost.cpp.o"
  "CMakeFiles/bench_fig5_cost.dir/bench_fig5_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
