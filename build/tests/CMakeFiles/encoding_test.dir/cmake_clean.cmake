file(REMOVE_RECURSE
  "CMakeFiles/encoding_test.dir/encoding_test.cpp.o"
  "CMakeFiles/encoding_test.dir/encoding_test.cpp.o.d"
  "encoding_test"
  "encoding_test.pdb"
  "encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
