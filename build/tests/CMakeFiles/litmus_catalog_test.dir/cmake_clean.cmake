file(REMOVE_RECURSE
  "CMakeFiles/litmus_catalog_test.dir/litmus_catalog_test.cpp.o"
  "CMakeFiles/litmus_catalog_test.dir/litmus_catalog_test.cpp.o.d"
  "litmus_catalog_test"
  "litmus_catalog_test.pdb"
  "litmus_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
