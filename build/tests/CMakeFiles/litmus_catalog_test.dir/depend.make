# Empty dependencies file for litmus_catalog_test.
# This may be replaced when dependencies are built.
