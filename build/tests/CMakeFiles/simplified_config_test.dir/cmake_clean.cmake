file(REMOVE_RECURSE
  "CMakeFiles/simplified_config_test.dir/simplified_config_test.cpp.o"
  "CMakeFiles/simplified_config_test.dir/simplified_config_test.cpp.o.d"
  "simplified_config_test"
  "simplified_config_test.pdb"
  "simplified_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplified_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
