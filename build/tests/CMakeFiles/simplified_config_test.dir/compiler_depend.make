# Empty compiler generated dependencies file for simplified_config_test.
# This may be replaced when dependencies are built.
