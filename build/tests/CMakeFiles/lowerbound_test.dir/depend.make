# Empty dependencies file for lowerbound_test.
# This may be replaced when dependencies are built.
