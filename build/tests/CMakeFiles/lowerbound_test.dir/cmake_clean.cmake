file(REMOVE_RECURSE
  "CMakeFiles/lowerbound_test.dir/lowerbound_test.cpp.o"
  "CMakeFiles/lowerbound_test.dir/lowerbound_test.cpp.o.d"
  "lowerbound_test"
  "lowerbound_test.pdb"
  "lowerbound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowerbound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
