file(REMOVE_RECURSE
  "CMakeFiles/witness_test.dir/witness_test.cpp.o"
  "CMakeFiles/witness_test.dir/witness_test.cpp.o.d"
  "witness_test"
  "witness_test.pdb"
  "witness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
