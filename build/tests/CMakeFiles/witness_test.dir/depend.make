# Empty dependencies file for witness_test.
# This may be replaced when dependencies are built.
