# Empty compiler generated dependencies file for equivalence_test.
# This may be replaced when dependencies are built.
