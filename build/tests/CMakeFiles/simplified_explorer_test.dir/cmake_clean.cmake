file(REMOVE_RECURSE
  "CMakeFiles/simplified_explorer_test.dir/simplified_explorer_test.cpp.o"
  "CMakeFiles/simplified_explorer_test.dir/simplified_explorer_test.cpp.o.d"
  "simplified_explorer_test"
  "simplified_explorer_test.pdb"
  "simplified_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplified_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
