# Empty dependencies file for simplified_explorer_test.
# This may be replaced when dependencies are built.
