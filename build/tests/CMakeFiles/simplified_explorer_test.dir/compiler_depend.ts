# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simplified_explorer_test.
