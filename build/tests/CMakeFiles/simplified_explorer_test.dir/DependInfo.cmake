
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simplified_explorer_test.cpp" "tests/CMakeFiles/simplified_explorer_test.dir/simplified_explorer_test.cpp.o" "gcc" "tests/CMakeFiles/simplified_explorer_test.dir/simplified_explorer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lowerbound/CMakeFiles/rapar_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rapar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/rapar_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/depgraph/CMakeFiles/rapar_depgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/rapar_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/simplified/CMakeFiles/rapar_simpl.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/rapar_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/rapar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rapar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
