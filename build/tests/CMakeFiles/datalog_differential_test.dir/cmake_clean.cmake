file(REMOVE_RECURSE
  "CMakeFiles/datalog_differential_test.dir/datalog_differential_test.cpp.o"
  "CMakeFiles/datalog_differential_test.dir/datalog_differential_test.cpp.o.d"
  "datalog_differential_test"
  "datalog_differential_test.pdb"
  "datalog_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
