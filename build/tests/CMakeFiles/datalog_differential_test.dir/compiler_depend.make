# Empty compiler generated dependencies file for datalog_differential_test.
# This may be replaced when dependencies are built.
