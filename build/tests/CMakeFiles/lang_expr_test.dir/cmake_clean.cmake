file(REMOVE_RECURSE
  "CMakeFiles/lang_expr_test.dir/lang_expr_test.cpp.o"
  "CMakeFiles/lang_expr_test.dir/lang_expr_test.cpp.o.d"
  "lang_expr_test"
  "lang_expr_test.pdb"
  "lang_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
