# Empty dependencies file for datalog_cache_test.
# This may be replaced when dependencies are built.
