file(REMOVE_RECURSE
  "CMakeFiles/datalog_cache_test.dir/datalog_cache_test.cpp.o"
  "CMakeFiles/datalog_cache_test.dir/datalog_cache_test.cpp.o.d"
  "datalog_cache_test"
  "datalog_cache_test.pdb"
  "datalog_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
