file(REMOVE_RECURSE
  "CMakeFiles/ra_semantics_test.dir/ra_semantics_test.cpp.o"
  "CMakeFiles/ra_semantics_test.dir/ra_semantics_test.cpp.o.d"
  "ra_semantics_test"
  "ra_semantics_test.pdb"
  "ra_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
