# Empty dependencies file for ra_semantics_test.
# This may be replaced when dependencies are built.
