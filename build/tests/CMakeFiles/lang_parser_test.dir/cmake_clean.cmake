file(REMOVE_RECURSE
  "CMakeFiles/lang_parser_test.dir/lang_parser_test.cpp.o"
  "CMakeFiles/lang_parser_test.dir/lang_parser_test.cpp.o.d"
  "lang_parser_test"
  "lang_parser_test.pdb"
  "lang_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
