file(REMOVE_RECURSE
  "CMakeFiles/parser_fuzz_test.dir/parser_fuzz_test.cpp.o"
  "CMakeFiles/parser_fuzz_test.dir/parser_fuzz_test.cpp.o.d"
  "parser_fuzz_test"
  "parser_fuzz_test.pdb"
  "parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
