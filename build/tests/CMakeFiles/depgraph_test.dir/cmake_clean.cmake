file(REMOVE_RECURSE
  "CMakeFiles/depgraph_test.dir/depgraph_test.cpp.o"
  "CMakeFiles/depgraph_test.dir/depgraph_test.cpp.o.d"
  "depgraph_test"
  "depgraph_test.pdb"
  "depgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
