# Empty compiler generated dependencies file for depgraph_test.
# This may be replaced when dependencies are built.
