file(REMOVE_RECURSE
  "CMakeFiles/trace_render_test.dir/trace_render_test.cpp.o"
  "CMakeFiles/trace_render_test.dir/trace_render_test.cpp.o.d"
  "trace_render_test"
  "trace_render_test.pdb"
  "trace_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
