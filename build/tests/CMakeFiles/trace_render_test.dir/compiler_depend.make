# Empty compiler generated dependencies file for trace_render_test.
# This may be replaced when dependencies are built.
