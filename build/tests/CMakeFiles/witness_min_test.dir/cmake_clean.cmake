file(REMOVE_RECURSE
  "CMakeFiles/witness_min_test.dir/witness_min_test.cpp.o"
  "CMakeFiles/witness_min_test.dir/witness_min_test.cpp.o.d"
  "witness_min_test"
  "witness_min_test.pdb"
  "witness_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
