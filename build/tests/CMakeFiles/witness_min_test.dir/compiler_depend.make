# Empty compiler generated dependencies file for witness_min_test.
# This may be replaced when dependencies are built.
