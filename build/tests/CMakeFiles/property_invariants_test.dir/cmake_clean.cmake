file(REMOVE_RECURSE
  "CMakeFiles/property_invariants_test.dir/property_invariants_test.cpp.o"
  "CMakeFiles/property_invariants_test.dir/property_invariants_test.cpp.o.d"
  "property_invariants_test"
  "property_invariants_test.pdb"
  "property_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
