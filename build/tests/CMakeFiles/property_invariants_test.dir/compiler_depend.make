# Empty compiler generated dependencies file for property_invariants_test.
# This may be replaced when dependencies are built.
