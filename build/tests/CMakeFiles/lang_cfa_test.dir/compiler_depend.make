# Empty compiler generated dependencies file for lang_cfa_test.
# This may be replaced when dependencies are built.
