file(REMOVE_RECURSE
  "CMakeFiles/lang_cfa_test.dir/lang_cfa_test.cpp.o"
  "CMakeFiles/lang_cfa_test.dir/lang_cfa_test.cpp.o.d"
  "lang_cfa_test"
  "lang_cfa_test.pdb"
  "lang_cfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_cfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
