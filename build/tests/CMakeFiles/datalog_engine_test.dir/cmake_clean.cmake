file(REMOVE_RECURSE
  "CMakeFiles/datalog_engine_test.dir/datalog_engine_test.cpp.o"
  "CMakeFiles/datalog_engine_test.dir/datalog_engine_test.cpp.o.d"
  "datalog_engine_test"
  "datalog_engine_test.pdb"
  "datalog_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
