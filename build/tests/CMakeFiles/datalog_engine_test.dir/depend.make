# Empty dependencies file for datalog_engine_test.
# This may be replaced when dependencies are built.
