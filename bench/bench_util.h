// Shared helpers for the reproduction benches: each bench binary first
// regenerates its table/figure data on stdout (the "paper shape"), then
// runs its google-benchmark timings.
#ifndef RAPAR_BENCH_BENCH_UTIL_H_
#define RAPAR_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace rapar::benchutil {

// Wall-clock of one call, in milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Row(const std::vector<std::string>& cells, int width = 22) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline void Rule(std::size_t cells, int width = 22) {
  std::printf("%s\n",
              std::string(cells * static_cast<std::size_t>(width), '-')
                  .c_str());
}

}  // namespace rapar::benchutil

// Standard main: print the reproduction tables (defined per binary as
// `PrintReproduction()`), then run the registered benchmarks.
#define RAPAR_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                          \
    PrintReproduction();                                     \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

#endif  // RAPAR_BENCH_BENCH_UTIL_H_
