// Figure 3: execution under the simplified semantics. The headline
// property: the consumer can iterate its loop arbitrarily often, and the
// abstract analysis cost is *independent of the number of env threads*
// (there is no such number — the semantics saturates), while the concrete
// semantics needs z producers for loop bound z and its state space grows
// steeply in both z and the thread count. This bench regenerates that
// crossover shape.
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "core/verifier.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintSweep() {
  Header(
      "Figure 3: producer-consumer, loop bound z — simplified (param.) vs "
      "concrete (z producers)");
  Row({"z", "simpl verdict", "simpl states", "simpl ms", "conc states",
       "conc ms"},
      16);
  Rule(6, 16);
  for (int z = 1; z <= 6; ++z) {
    BenchmarkCase bench = ProducerConsumer(z);
    SafetyVerifier verifier(bench.system);

    Verdict vs;
    const double simpl_ms = TimeMs([&] { vs = verifier.Run(std::nullopt); });

    VerifierOptions copts;
    copts.backend = Backend::kConcrete;
    copts.concrete.env_threads = z;
    copts.time_budget_ms = 20'000;
    Verdict vc;
    const double conc_ms = TimeMs([&] { vc = verifier.Run(std::nullopt, copts); });

    Row({std::to_string(z), vs.unsafe() ? "UNSAFE" : "safe",
         std::to_string(vs.states()), std::to_string(simpl_ms),
         vc.result == Verdict::Result::kUnknown
             ? "(budget)"
             : std::to_string(vc.states()),
         std::to_string(conc_ms)},
        16);
  }
  std::printf(
      "shape: the simplified semantics' cost stays flat in z (and has no "
      "thread count at all), the concrete state space grows steeply — the "
      "paper's motivation for the abstraction.\n");
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() { rapar::PrintSweep(); }

static void BM_SimplifiedVerify(benchmark::State& state) {
  rapar::BenchmarkCase bench =
      rapar::ProducerConsumer(static_cast<int>(state.range(0)));
  rapar::SafetyVerifier verifier(bench.system);
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt);
    benchmark::DoNotOptimize(v.result);
  }
}
BENCHMARK(BM_SimplifiedVerify)->DenseRange(1, 6);

static void BM_ConcreteVerify(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  rapar::BenchmarkCase bench = rapar::ProducerConsumer(z);
  rapar::SafetyVerifier verifier(bench.system);
  rapar::VerifierOptions opts;
  opts.backend = rapar::Backend::kConcrete;
  opts.concrete.env_threads = z;
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt, opts);
    benchmark::DoNotOptimize(v.result);
  }
}
BENCHMARK(BM_ConcreteVerify)->DenseRange(1, 3);

RAPAR_BENCH_MAIN()
