// Ablations of the design choices DESIGN.md calls out for the simplified
// explorer:
//   * covering-based pruning (subsumption over the monotone env parts)
//     vs plain equality dedup;
//   * minimal vs exhaustive gap-choice policy for the ⁺-timestamps.
// Both are optimisations justified by monotonicity arguments; the
// ablation quantifies what they buy while tests (equivalence_test,
// simplified_explorer_test) check they do not change verdicts.
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

struct Cell {
  std::size_t states = 0;
  double ms = 0;
  bool ok = false;
};

Cell RunConfig(const SimplSystem& sys, bool covering, ViewChoice policy) {
  SimplExplorer ex(sys);
  SimplExplorerOptions opts;
  opts.use_covering = covering;
  opts.policy = policy;
  opts.stop_on_violation = false;
  opts.max_states = 60'000;
  opts.time_budget_ms = 15'000;
  Cell cell;
  SimplResult r;
  cell.ms = TimeMs([&] { r = ex.Check(opts); });
  cell.states = r.states;
  cell.ok = r.exhaustive;
  return cell;
}

void PrintAblation() {
  Header("Ablation: covering and gap-choice policy (full exploration)");
  Row({"instance", "cover+min", "cover+all", "nocover+min",
       "nocover+all"},
      22);
  Rule(5, 22);

  struct Item {
    std::string name;
    ParamSystem system;
  };
  std::vector<Item> items;
  {
    std::vector<BenchmarkCase> suite = StandardBenchmarks();
    for (BenchmarkCase& b : suite) {
      items.push_back(Item{b.name, std::move(b.system)});
    }
  }
  {
    Rng rng(5);
    Qbf qbf = RandomQbf(rng, 1, 4);
    Expected<ParamSystem> sys = TqbfSystem(qbf);
    items.push_back(Item{"tqbf(n=1)", std::move(sys).value()});
  }

  for (const Item& item : items) {
    auto fmt = [](const Cell& c) {
      if (!c.ok) return std::string("(bound)");
      char buf[48];
      std::snprintf(buf, sizeof buf, "%zu st / %.1fms", c.states, c.ms);
      return std::string(buf);
    };
    Row({item.name,
         fmt(RunConfig(item.system.simpl(), true, ViewChoice::kMinimal)),
         fmt(RunConfig(item.system.simpl(), true, ViewChoice::kAll)),
         fmt(RunConfig(item.system.simpl(), false, ViewChoice::kMinimal)),
         fmt(RunConfig(item.system.simpl(), false, ViewChoice::kAll))},
        22);
  }
  std::printf(
      "(states counts abstract configurations after env saturation; "
      "covering prunes subsumed configurations, the minimal policy "
      "collapses the gap nondeterminism)\n");
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() { rapar::PrintAblation(); }

static void BM_Ablation(benchmark::State& state) {
  rapar::BenchmarkCase bench = rapar::ProducerConsumer(3);
  const bool covering = state.range(0) != 0;
  const rapar::ViewChoice policy = state.range(1) != 0
                                       ? rapar::ViewChoice::kAll
                                       : rapar::ViewChoice::kMinimal;
  for (auto _ : state) {
    rapar::Cell c = rapar::RunConfig(bench.system.simpl(), covering, policy);
    benchmark::DoNotOptimize(c.states);
  }
  state.SetLabel(std::string(covering ? "cover" : "nocover") + "/" +
                 (state.range(1) != 0 ? "all" : "min"));
}
BENCHMARK(BM_Ablation)->ArgsProduct({{0, 1}, {0, 1}});

RAPAR_BENCH_MAIN()
