// Figure 5: the cost-annotated dependency graph of the producer-consumer
// example. The paper's result: cost(msg#) = z, the consumer's loop bound —
// z env threads suffice to generate the goal message. We regenerate the
// cost curve and validate it concretely: z producers reach the goal, z-1
// do not (second table, §4.3).
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "depgraph/dep_graph.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;

void PrintCostCurve() {
  Header("Figure 5: cost(G) = z for producer-consumer");
  Row({"z", "cost(msg#)", "expected", "witness compact (<= Q0)"}, 24);
  Rule(4, 24);
  for (int z = 1; z <= 6; ++z) {
    BenchmarkCase bench = ProducerConsumer(z);
    SafetyVerifier verifier(bench.system);
    Verdict v = verifier.Run(std::nullopt);
    const long long cost =
        v.env_thread_bound.has_value() ? *v.env_thread_bound : -1;

    // Compactness of the found witness (Lemma 4.5's bound).
    SimplExplorer ex(bench.system.simpl());
    SimplResult r = ex.Check({});
    bool compact = false;
    if (r.violation) {
      DepGraph g = DepGraph::Build(bench.system.simpl(), r.witness);
      compact = g.IsCompact(bench.system.Q0());
    }
    Row({std::to_string(z), std::to_string(cost), std::to_string(z),
         compact ? "yes" : "no"},
        24);
  }
}

void PrintThreadBoundValidation() {
  Header("§4.3: the cost bound as a concrete instance size");
  Row({"z", "bound b", "concrete n=b", "concrete n=b-1"}, 20);
  Rule(4, 20);
  for (int z = 1; z <= 4; ++z) {
    BenchmarkCase bench = ProducerConsumer(z);
    SafetyVerifier verifier(bench.system);
    Verdict v = verifier.Run(std::nullopt);
    if (!v.env_thread_bound.has_value()) continue;
    const int b = static_cast<int>(*v.env_thread_bound);
    auto concrete = [&](int n) -> std::string {
      if (n <= 0) return "n/a";
      VerifierOptions opts;
      opts.backend = Backend::kConcrete;
      opts.concrete.env_threads = n;
      opts.time_budget_ms = 20'000;
      Verdict cv = verifier.Run(std::nullopt, opts);
      if (cv.unsafe()) return "bug reached";
      return cv.safe() ? "not reached" : "(budget)";
    };
    Row({std::to_string(z), std::to_string(b), concrete(b),
         concrete(b - 1)},
        20);
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintCostCurve();
  rapar::PrintThreadBoundValidation();
}

static void BM_CostAnalysisEndToEnd(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  rapar::BenchmarkCase bench = rapar::ProducerConsumer(z);
  rapar::SafetyVerifier verifier(bench.system);
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt);
    benchmark::DoNotOptimize(v.env_thread_bound);
  }
}
BENCHMARK(BM_CostAnalysisEndToEnd)->DenseRange(1, 5);

RAPAR_BENCH_MAIN()
