// Serve-mode load generator: the standard benchmark catalog replayed
// against a ServeSession in three regimes —
//   cold: a fresh session per request (cold engine arena, empty cache),
//   warm: one long-lived session with the verdict cache disabled (the
//         datalog arena stays warm across requests, every request still
//         runs the pipeline),
//   hit:  one long-lived session with the cache on, second pass (every
//         request replays the memoized envelope).
// Every regime's verdict is checked against a one-shot SafetyVerifier
// run (the parity column); the summary's speedup_hit is CI-gated at 2x
// over cold in scripts/check.sh.
//
// --json[=PATH] writes the table as BENCH_serve.json for CI upload.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "core/benchmarks.h"
#include "core/result_json.h"
#include "core/serve.h"
#include "core/verifier.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

serve::ServeOptions SessionOpts(std::size_t cache_entries) {
  serve::ServeOptions o;
  o.threads = 1;
  o.cache_entries = cache_entries;
  return o;
}

// One request line per catalog instance, datalog backend (the backend
// whose arena the warm regime reuses).
std::string RequestLine(const BenchmarkCase& bench) {
  JsonWriter w;
  w.BeginObject();
  w.Key("command").String("verify");
  w.Key("env").String(bench.system.env_program().ToString());
  w.Key("dis").BeginArray();
  for (const Program& dis : bench.system.dis_programs()) {
    w.String(dis.ToString());
  }
  w.EndArray();
  w.Key("options").BeginObject();
  w.Key("backend").String("datalog");
  w.Key("time_budget_ms").Int(60'000);
  w.Key("max_guesses").Int(30'000);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string VerdictOf(const std::string& response) {
  auto doc = ParseJson(response);
  if (!doc.ok()) return "parse-error";
  const JsonValue* v = doc.value().Find("verdict");
  return v != nullptr ? v->string : "missing";
}

struct InstanceResult {
  std::string name;
  std::string verdict;
  bool parity = true;
  double cold_ms = 0;
  double warm_ms = 0;
  double hit_ms = 0;
};

void RunLoadGenerator(const char* json_path) {
  Header("serve-mode catalog replay (datalog backend)");
  Row({"instance", "verdict", "cold ms", "warm ms", "hit ms", "parity"}, 14);
  Rule(6, 14);

  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  std::vector<InstanceResult> results;

  // Long-lived sessions: `warm` keeps the engine arena but re-runs the
  // pipeline every time; `cached` answers the second pass from the
  // verdict cache.
  serve::ServeSession warm(SessionOpts(/*cache_entries=*/0));
  serve::ServeSession cached(SessionOpts(/*cache_entries=*/1024));

  constexpr int kReps = 3;
  for (const BenchmarkCase& bench : suite) {
    InstanceResult r;
    r.name = bench.name;
    const std::string line = RequestLine(bench);

    // One-shot oracle for the parity column.
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 60'000;
    opts.max_guesses = 30'000;
    SafetyVerifier verifier(bench.system);
    const std::string oracle = VerdictName(verifier.Run(std::nullopt, opts).result);

    std::string response;
    // cold: fresh session per repetition; min wall-clock of kReps.
    for (int rep = 0; rep < kReps; ++rep) {
      serve::ServeSession session(SessionOpts(/*cache_entries=*/1024));
      const double ms = TimeMs([&] { response = session.HandleLine(line); });
      r.cold_ms = rep == 0 ? ms : std::min(r.cold_ms, ms);
    }
    r.verdict = VerdictOf(response);
    r.parity = r.verdict == oracle;

    // warm: one priming call, then timed repetitions on the live arena.
    warm.HandleLine(line);
    for (int rep = 0; rep < kReps; ++rep) {
      const double ms = TimeMs([&] { response = warm.HandleLine(line); });
      r.warm_ms = rep == 0 ? ms : std::min(r.warm_ms, ms);
    }
    r.parity = r.parity && VerdictOf(response) == oracle;

    // hit: one populating miss, then timed cache replays.
    cached.HandleLine(line);
    for (int rep = 0; rep < kReps; ++rep) {
      const double ms = TimeMs([&] { response = cached.HandleLine(line); });
      r.hit_ms = rep == 0 ? ms : std::min(r.hit_ms, ms);
    }
    r.parity = r.parity && VerdictOf(response) == oracle;

    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", v);
      return std::string(buf);
    };
    Row({r.name, r.verdict, fmt(r.cold_ms), fmt(r.warm_ms), fmt(r.hit_ms),
         r.parity ? "OK" : "MISMATCH"},
        14);
    results.push_back(std::move(r));
  }

  double cold = 0, warm_total = 0, hit = 0;
  bool parity = true;
  for (const InstanceResult& r : results) {
    cold += r.cold_ms;
    warm_total += r.warm_ms;
    hit += r.hit_ms;
    parity = parity && r.parity;
  }
  const double speedup_warm = warm_total > 0 ? cold / warm_total : 0;
  const double speedup_hit = hit > 0 ? cold / hit : 0;
  std::printf(
      "\ntotals: cold %.2f ms, warm %.2f ms (%.2fx), cache-hit %.2f ms "
      "(%.2fx), parity %s\n",
      cold, warm_total, speedup_warm, hit, speedup_hit,
      parity ? "OK" : "MISMATCH");

  if (json_path == nullptr) return;
  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.Key("bench").String("serve_replay");
  w.Key("rows").BeginArray();
  for (const InstanceResult& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("verdict").String(r.verdict);
    w.Key("cold_ms").Double(r.cold_ms);
    w.Key("warm_ms").Double(r.warm_ms);
    w.Key("hit_ms").Double(r.hit_ms);
    w.Key("parity").String(r.parity ? "OK" : "MISMATCH");
    w.EndObject();
  }
  w.EndArray();
  w.Key("totals").BeginObject();
  w.Key("cold_ms").Double(cold);
  w.Key("warm_ms").Double(warm_total);
  w.Key("hit_ms").Double(hit);
  w.Key("speedup_warm").Double(speedup_warm);
  w.Key("speedup_hit").Double(speedup_hit);
  w.Key("parity").String(parity ? "OK" : "MISMATCH");
  w.EndObject();
  w.EndObject();
  std::ofstream out(json_path);
  out << w.TakeString() << "\n";
  std::printf("wrote %s\n", json_path);
}

// --- google-benchmark timings ------------------------------------------------

void BM_ServeCacheHit(benchmark::State& state) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  serve::ServeSession session(SessionOpts(/*cache_entries=*/1024));
  const std::string line = RequestLine(suite[0]);
  session.HandleLine(line);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.HandleLine(line));
  }
}
BENCHMARK(BM_ServeCacheHit);

void BM_ServeWarmMiss(benchmark::State& state) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  serve::ServeSession session(SessionOpts(/*cache_entries=*/0));
  const std::string line = RequestLine(suite[0]);
  session.HandleLine(line);  // warm the arena
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.HandleLine(line));
  }
}
BENCHMARK(BM_ServeWarmMiss);

void BM_ServeColdSession(benchmark::State& state) {
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  const std::string line = RequestLine(suite[0]);
  for (auto _ : state) {
    serve::ServeSession session(SessionOpts(/*cache_entries=*/1024));
    benchmark::DoNotOptimize(session.HandleLine(line));
  }
}
BENCHMARK(BM_ServeColdSession);

}  // namespace
}  // namespace rapar

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_serve.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  rapar::RunLoadGenerator(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
