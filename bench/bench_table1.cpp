// Table 1: the complexity landscape of parameterized safety verification
// under RA. Each cell of the table is exercised by a representative
// instance family:
//
//   env(nocas) || dis_1(acyc).. — PSPACE-complete (§4/§5): decided exactly
//     by the simplified-semantics verifier and the Datalog backend; the
//     PSPACE-hardness side is exercised by deciding TQBF instances through
//     the Figure 6 reduction.
//   env(nocas) || dis(nocas) || dis(nocas) — non-primitive recursive [1]
//     (non-parameterized core): our tool still decides the *parameterized*
//     formulation; we demonstrate instances whose concrete exploration
//     grows steeply while the parameterized abstraction stays flat.
//   env(acyc) with CAS — undecidable (Theorem 1.1): the counter-machine
//     construction is run under bounded concrete exploration.
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "lowerbound/counter_machine.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"
#include "ra/explorer.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintDecidableCell() {
  Header(
      "Table 1, green cell: env(nocas) || dis1(acyc) || ... || disn(acyc) "
      "is PSPACE-complete");
  Row({"instance", "class", "verdict", "states", "time(ms)"}, 26);
  Rule(5, 26);
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    Verdict v;
    VerifierOptions opts;
    opts.time_budget_ms = 30'000;
    const double ms = TimeMs([&] { v = verifier.Run(std::nullopt, opts); });
    Row({bench.name, bench.paper_class,
         v.unsafe() ? "UNSAFE" : (v.safe() ? "SAFE" : "UNKNOWN"),
         std::to_string(v.states()),
         std::to_string(static_cast<int>(ms * 1000) / 1000.0)},
        26);
  }
}

void PrintHardnessCell() {
  Header("Table 1, hardness: TQBF decided via env(nocas,acyc) (Thm 5.1)");
  Row({"formula depth n", "formulas", "agreements", "avg time(ms)"}, 20);
  Rule(4, 20);
  Rng rng(99);
  for (int n = 0; n <= 2; ++n) {
    int agree = 0;
    const int kRuns = 6;
    double total_ms = 0;
    for (int i = 0; i < kRuns; ++i) {
      Qbf qbf = RandomQbf(rng, n, 4 + n);
      Expected<ParamSystem> sys = TqbfSystem(qbf);
      SafetyVerifier verifier(sys.value());
      Verdict v;
      VerifierOptions opts;
      opts.time_budget_ms = 30'000;
      total_ms += TimeMs([&] { v = verifier.Run(std::nullopt, opts); });
      if (v.unsafe() == EvalQbf(qbf)) ++agree;
    }
    Row({std::to_string(n), std::to_string(kRuns), std::to_string(agree),
         std::to_string(total_ms / kRuns)},
        20);
  }
}

void PrintUndecidableCell() {
  Header(
      "Table 1, red cell: env(acyc) with CAS is undecidable (Thm 1.1) — "
      "counter-machine simulation under bounded exploration");
  CounterMachine m;
  m.num_states = 6;
  m.initial = 0;
  m.halt = 5;
  using Op = CounterMachine::Op;
  m.instrs = {
      {Op::kInc, 0, 0, 1, 0}, {Op::kInc, 0, 1, 2, 0},
      {Op::kDec, 0, 2, 3, 0}, {Op::kDec, 0, 3, 4, 0},
      {Op::kJz, 0, 4, 5, 4},
  };
  Program prog = CounterMachineToEnvCas(m, 4);
  Cfa cfa = Cfa::Build(prog);
  Row({"env threads", "halt reached", "states"}, 16);
  Rule(3, 16);
  for (int n = 3; n <= 6; ++n) {
    std::vector<const Cfa*> threads(static_cast<std::size_t>(n), &cfa);
    RaExplorer ex(threads, prog.dom(), prog.vars().size(),
                  {0, static_cast<std::size_t>(n)});
    RaExplorerOptions opts;
    opts.max_states = 400'000;
    opts.time_budget_ms = 20'000;
    RaResult r = ex.CheckSafety(opts);
    Row({std::to_string(n), r.violation ? "yes" : "no",
         std::to_string(r.states)},
        16);
  }
  std::printf(
      "(each env thread performs one machine step; CAS adjacency makes "
      "the chain exact — unbounded machines make the problem "
      "undecidable)\n");
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintDecidableCell();
  rapar::PrintHardnessCell();
  rapar::PrintUndecidableCell();
}

// --- timings -----------------------------------------------------------------

static void BM_VerifySuite(benchmark::State& state) {
  std::vector<rapar::BenchmarkCase> suite = rapar::StandardBenchmarks();
  const rapar::BenchmarkCase& bench =
      suite[static_cast<std::size_t>(state.range(0))];
  rapar::SafetyVerifier verifier(bench.system);
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt);
    benchmark::DoNotOptimize(v.result);
  }
  state.SetLabel(bench.name);
}
BENCHMARK(BM_VerifySuite)->DenseRange(0, 10);

RAPAR_BENCH_MAIN()
