// Figure 2: the RA transition rules. Microbenchmarks for the rule-level
// primitives of both semantics: concrete message insertion/renumbering
// (ST/CAS-GLOBAL), load enumeration (LD), view joins, and the abstract
// counterparts, plus the conformance summary of the litmus behaviours the
// rules must produce.
#include "bench/bench_util.h"
#include "lang/parser.h"
#include "ra/config.h"
#include "ra/explorer.h"
#include "simplified/simpl_config.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  if (!p.ok()) std::abort();
  return std::move(p).value();
}

// The litmus matrix the transition rules must realise (see
// tests/ra_semantics_test.cpp for the full suite).
void PrintConformance() {
  Header("Figure 2 conformance: RA litmus behaviours");
  struct Case {
    const char* name;
    std::vector<std::string> programs;
    bool allowed;  // behaviour observable?
  };
  const char* mp_writer = R"(
    program w
    vars x y
    regs r
    dom 2
    begin
      r := 1;
      y := r;
      x := r
    end)";
  std::vector<Case> cases;
  cases.push_back({"MP: x==1 then y==0",
                   {mp_writer, R"(
    program r
    vars x y
    regs a b
    dom 2
    begin
      a := x;
      assume (a == 1);
      b := y;
      assume (b == 0);
      assert false
    end)"},
                   false});
  cases.push_back({"SB: both read 0",
                   {R"(
    program l
    vars x y f g
    regs r one
    dom 2
    begin
      one := 1;
      x := one;
      r := y;
      assume (r == 0);
      f := one
    end)",
                    R"(
    program rr
    vars x y f g
    regs r one
    dom 2
    begin
      one := 1;
      y := one;
      r := x;
      assume (r == 0);
      g := one
    end)",
                    R"(
    program c
    vars x y f g
    regs a b
    dom 2
    begin
      a := f;
      assume (a == 1);
      b := g;
      assume (b == 1);
      assert false
    end)"},
                   true});
  cases.push_back({"CoRR: read 2 then 1",
                   {R"(
    program w
    vars x
    regs r
    dom 4
    begin
      r := 1;
      x := r;
      r := 2;
      x := r
    end)",
                    R"(
    program r
    vars x
    regs a b
    dom 4
    begin
      a := x;
      assume (a == 2);
      b := x;
      assume (b == 1);
      assert false
    end)"},
                   false});

  Row({"litmus", "RA allows", "explorer observes"}, 24);
  Rule(3, 24);
  for (const Case& c : cases) {
    std::vector<Program> programs;
    std::vector<Cfa> cfas;
    for (const auto& text : c.programs) programs.push_back(Parse(text));
    for (const auto& p : programs) cfas.push_back(Cfa::Build(p));
    std::vector<const Cfa*> ptrs;
    for (const auto& cfa : cfas) ptrs.push_back(&cfa);
    RaExplorer ex(ptrs, programs[0].dom(), programs[0].vars().size());
    RaResult r = ex.CheckSafety();
    Row({c.name, c.allowed ? "yes" : "no", r.violation ? "yes" : "no"},
        24);
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() { rapar::PrintConformance(); }

// --- rule-level microbenchmarks ------------------------------------------------

static void BM_ConcreteStoreInsertion(benchmark::State& state) {
  using namespace rapar;
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RaConfig cfg(vars, {1});
    View vw(vars);
    // 32 stores on variable 0, always at the front (worst-case shifting).
    for (int i = 0; i < 32; ++i) {
      cfg.InsertMessage(VarId(0), 1, 1, vw, false);
    }
    benchmark::DoNotOptimize(cfg.NumMsgs(VarId(0)));
  }
}
BENCHMARK(BM_ConcreteStoreInsertion)->Arg(2)->Arg(8)->Arg(32);

static void BM_ViewJoin(benchmark::State& state) {
  using namespace rapar;
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  View a(vars), b(vars);
  for (std::size_t i = 0; i < vars; ++i) {
    a.Slot(i) = static_cast<Timestamp>(i % 7);
    b.Slot(i) = static_cast<Timestamp>((i * 3) % 5);
  }
  for (auto _ : state) {
    View j = a.Join(b);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_ViewJoin)->Arg(4)->Arg(16)->Arg(64);

static void BM_AbstractDisInsertion(benchmark::State& state) {
  using namespace rapar;
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SimplConfig cfg(vars, 1, {1});
    View vw(vars);
    for (int i = 0; i < 16; ++i) {
      cfg.InsertDisMsg(VarId(0), 0, 1, vw, false);
    }
    benchmark::DoNotOptimize(cfg.NumGaps(VarId(0)));
  }
}
BENCHMARK(BM_AbstractDisInsertion)->Arg(2)->Arg(8)->Arg(32);

static void BM_AbstractEnvMsgInsertion(benchmark::State& state) {
  using namespace rapar;
  const std::size_t vars = 4;
  for (auto _ : state) {
    rapar::SimplConfig cfg(vars, 1, {1});
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      rapar::EnvMsg m;
      m.var = rapar::VarId(0);
      m.val = i % 2;
      m.view = rapar::View(vars);
      m.view.Set(rapar::VarId(1),
                 rapar::PlusTs(0) + 2 * (i % 3));  // vary the view
      m.view.Set(rapar::VarId(0), rapar::PlusTs(0));
      cfg.AddEnvMsg(std::move(m));
    }
    benchmark::DoNotOptimize(cfg.env_msgs().size());
  }
}
BENCHMARK(BM_AbstractEnvMsgInsertion)->Arg(16)->Arg(128);

RAPAR_BENCH_MAIN()
