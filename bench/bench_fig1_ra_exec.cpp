// Figure 1: the producer-consumer program under the *standard* RA
// semantics. We replay the figure's execution shape (the consumer's store
// to y, the producer's load/compute/store on x, the consumer's choice of
// reading the init message or the produced one) and chart how explicit
// exploration of the concrete semantics scales with the number of
// threads — the infinite-state problem the simplified semantics removes.
#include "bench/bench_util.h"
#include "lang/parser.h"
#include "ra/explorer.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

Program Parse(const char* text) {
  Expected<Program> p = ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "%s\n", p.error().c_str());
    std::abort();
  }
  return std::move(p).value();
}

const char* kProducer = R"(
  program producer
  vars x y
  regs r
  dom 8
  begin
    r := y;           // λ1
    assume (r == 1);  // λ2
    r := r + 3;
    x := r            // λ3: produces 4
  end
)";

const char* kConsumer = R"(
  program consumer
  vars x y
  regs s one
  dom 8
  begin
    one := 1;
    y := one;         // τ1: the store from Figure 1
    s := x            // τ3: reads 0 (init) or 4 (produced)
  end
)";

void PrintExecutionShape() {
  Header("Figure 1: executions of the producer-consumer snippet");
  Program producer = Parse(kProducer);
  Program consumer = Parse(kConsumer);
  Cfa pc = Cfa::Build(producer);
  Cfa cc = Cfa::Build(consumer);
  RaExplorer ex({&pc, &cc}, producer.dom(), producer.vars().size());
  RaExplorerOptions opts;
  opts.stop_on_violation = false;
  ex.CheckSafety(opts);
  Row({"observable message (var, val)", "seen"}, 34);
  Rule(2, 34);
  for (auto [var, val] : {std::pair{0, 4}, {1, 1}, {0, 7}}) {
    const bool seen =
        ex.generated_messages().count(
            {static_cast<std::uint32_t>(var), val}) > 0;
    Row({std::string(var == 0 ? "(x, " : "(y, ") + std::to_string(val) +
             ")",
         seen ? "yes" : "no"},
        34);
  }
  std::printf(
      "(x,4) is the produced message of Figure 1; (x,7) would require a "
      "second producer reading 4 — impossible with one producer.\n");
}

void PrintScaling() {
  Header("Concrete RA exploration: states vs producer count");
  Program producer = Parse(kProducer);
  Program consumer = Parse(kConsumer);
  Cfa pc = Cfa::Build(producer);
  Cfa cc = Cfa::Build(consumer);
  Row({"producers", "states", "time(ms)"}, 16);
  Rule(3, 16);
  for (int n = 1; n <= 5; ++n) {
    std::vector<const Cfa*> threads(static_cast<std::size_t>(n), &pc);
    threads.push_back(&cc);
    RaExplorer ex(threads, producer.dom(), producer.vars().size(),
                  {0, static_cast<std::size_t>(n)});
    RaExplorerOptions opts;
    opts.stop_on_violation = false;
    opts.max_states = 2'000'000;
    opts.time_budget_ms = 20'000;
    RaResult r;
    const double ms = TimeMs([&] { r = ex.CheckSafety(opts); });
    Row({std::to_string(n), std::to_string(r.states),
         std::to_string(ms)},
        16);
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintExecutionShape();
  rapar::PrintScaling();
}

static void BM_ConcreteExploration(benchmark::State& state) {
  rapar::Program producer = [] {
    auto p = rapar::ParseProgram(rapar::kProducer);
    return std::move(p).value();
  }();
  rapar::Program consumer = [] {
    auto p = rapar::ParseProgram(rapar::kConsumer);
    return std::move(p).value();
  }();
  rapar::Cfa pc = rapar::Cfa::Build(producer);
  rapar::Cfa cc = rapar::Cfa::Build(consumer);
  const int n = static_cast<int>(state.range(0));
  std::vector<const rapar::Cfa*> threads(static_cast<std::size_t>(n), &pc);
  threads.push_back(&cc);
  for (auto _ : state) {
    rapar::RaExplorer ex(threads, producer.dom(), producer.vars().size(),
                         {0, static_cast<std::size_t>(n)});
    rapar::RaExplorerOptions opts;
    opts.stop_on_violation = false;
    rapar::RaResult r = ex.CheckSafety(opts);
    benchmark::DoNotOptimize(r.states);
  }
}
BENCHMARK(BM_ConcreteExploration)->DenseRange(1, 4);

RAPAR_BENCH_MAIN()
