// Theorem 3.4 / Theorem 4.1 head-to-head: the three backends on the
// benchmark corpus. The verdicts must coincide (sound & complete
// abstraction; correct encoding); the costs differ by design:
// the saturation explorer is the production path, the Datalog path
// realises the PSPACE argument, the concrete path is the baseline whose
// state space the parameterization removes.
//
// --json[=PATH] additionally writes the parallel-scaling table as JSON
// (default PATH: BENCH_parallel.json) for CI artifact upload.
#include <cstring>
#include <fstream>
#include <thread>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/benchmarks.h"
#include "core/result_json.h"
#include "core/shard.h"
#include "core/verifier.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "lang/random_program.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"
#include "tmai/certcheck.h"
#include "tmai/tmai.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintComparison() {
  Header("Backends head-to-head on the benchmark corpus");
  Row({"instance", "simplified", "ms", "datalog", "ms", "concrete(n=2)",
       "ms"},
      17);
  Rule(7, 17);
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    auto run = [&](Backend backend, double* ms) {
      VerifierOptions opts;
      opts.backend = backend;
      opts.concrete.env_threads = 2;
      opts.time_budget_ms = 20'000;
      opts.max_guesses = 30'000;
      Verdict v;
      *ms = TimeMs([&] { v = verifier.Run(std::nullopt, opts); });
      if (v.unsafe()) return std::string("UNSAFE");
      return std::string(v.safe() ? "SAFE" : "unknown");
    };
    double ms_s = 0, ms_d = 0, ms_c = 0;
    const std::string s = run(Backend::kSimplifiedExplorer, &ms_s);
    const std::string d = run(Backend::kDatalog, &ms_d);
    const std::string c = run(Backend::kConcrete, &ms_c);
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      return std::string(buf);
    };
    Row({bench.name, s, fmt(ms_s), d, fmt(ms_d), c, fmt(ms_c)}, 17);
  }
  std::printf(
      "(the Datalog backend may report 'unknown' when the guess "
      "enumeration exceeds its cap; 'concrete' verdicts are instance-"
      "level, not parameterized)\n");
}

// Datalog backend with the query-driven optimizer (src/dlopt/) on vs
// off: rules emitted by makeP vs rules actually evaluated, and the
// wall-clock effect. The TQBF family appears twice — the plain safety
// verdict (whose encoding is nearly tight) and the per-level witness MG
// queries of Theorem 5.1's induction, where backward demand slices away
// every role below the queried level.
void PrintDlOptAblation() {
  Header("dlopt ablation on the Datalog backend (rules emitted vs evaluated)");
  Row({"instance", "emitted", "evaluated", "pruned", "ms(on)", "ms(off)",
       "verdict"},
      15);
  Rule(7, 15);
  auto fmt_ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    Verdict on, off;
    const double ms_on = TimeMs([&] {
      on = verifier.Run(goal, opts);
    });
    opts.datalog.enable_dlopt = false;
    const double ms_off = TimeMs([&] {
      off = verifier.Run(goal, opts);
    });
    const std::size_t before = on.dlopt().rules_before;
    const std::size_t after = on.dlopt().rules_after;
    const double pct =
        before == 0 ? 0.0
                    : 100.0 * static_cast<double>(before - after) /
                          static_cast<double>(before);
    char pruned[32];
    std::snprintf(pruned, sizeof pruned, "%.0f%%", pct);
    const char* v = on.unsafe() ? "UNSAFE" : (on.safe() ? "SAFE" : "unknown");
    const char* v2 =
        off.unsafe() ? "UNSAFE" : (off.safe() ? "SAFE" : "unknown");
    Row({name, std::to_string(before), std::to_string(after), pruned,
         fmt_ms(ms_on), fmt_ms(ms_off),
         StrCat(v, v == v2 ? "" : " (MISMATCH)")},
        15);
  };
  for (const BenchmarkCase& bench : StandardBenchmarks()) {
    run(bench.system, bench.name, std::nullopt);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  for (int level = 0; level <= qbf.n; ++level) {
    TqbfWitnessQuery q = TqbfLevelQuery(qbf, level);
    if (!q.system.ok()) continue;
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", level, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  std::printf(
      "(emitted/evaluated are Verdict dlopt counts summed over guesses; "
      "the MG rows query the level-i witness message of the Theorem 5.1 "
      "induction — demand slicing drops the roles below level i)\n");
}

// Evaluation-core tuning (dl::EngineOptions) on vs off: argument-hash
// join indexes + cheapest-first body ordering + EDB snapshot reuse vs
// the plain nested-loop scan. join_attempts counts candidate tuples
// tested during body matching — the quantity indexing is built to cut.
// Verdicts must be identical (the tuning is result-preserving).
void PrintIndexAblation() {
  Header("engine index ablation on the Datalog backend (join attempts)");
  Row({"instance", "joins(on)", "joins(off)", "speedup", "ms(on)", "ms(off)",
       "verdict"},
      15);
  Rule(7, 15);
  auto fmt_ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    // Evaluate the raw emitted query instances: with the dlopt rule
    // pruning on, little join work is left on the small instances and
    // the engine ablation would mostly measure the optimizer. Its
    // effect is measured separately in PrintDlOptAblation.
    opts.datalog.enable_dlopt = false;
    auto verify = [&] {
      return verifier.Run(goal, opts);
    };
    Verdict on, off;
    const double ms_on = TimeMs([&] { on = verify(); });
    opts.datalog.engine.use_index = false;
    opts.datalog.engine.reorder_joins = false;
    opts.datalog.engine.reuse_facts = false;
    const double ms_off = TimeMs([&] { off = verify(); });
    const double ratio =
        on.join_attempts() == 0
            ? 0.0
            : static_cast<double>(off.join_attempts()) /
                  static_cast<double>(on.join_attempts());
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", ratio);
    const char* v = on.unsafe() ? "UNSAFE" : (on.safe() ? "SAFE" : "unknown");
    const char* v2 =
        off.unsafe() ? "UNSAFE" : (off.safe() ? "SAFE" : "unknown");
    Row({name, std::to_string(on.join_attempts()),
         std::to_string(off.join_attempts()), speedup, fmt_ms(ms_on),
         fmt_ms(ms_off), StrCat(v, v == v2 ? "" : " (MISMATCH)")},
        15);
  };
  for (int z : {4, 8, 12}) {
    // The unsafe instance early-exits on the first witness guess; the
    // safe variant must run every guess to a full fixpoint — the
    // join-heavy regime the indexes target.
    const BenchmarkCase unsafe_pc = ProducerConsumer(z);
    run(unsafe_pc.system, unsafe_pc.name, std::nullopt);
    const BenchmarkCase safe_pc = ProducerConsumerSafe(z);
    run(safe_pc.system, safe_pc.name, std::nullopt);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  TqbfWitnessQuery q = TqbfLevelQuery(qbf, qbf.n);
  if (q.system.ok()) {
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", qbf.n, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  std::printf(
      "(joins = Verdict join_attempts summed over guesses; 'on' is the "
      "default tuning — indexes + reordering + EDB snapshot reuse; 'off' "
      "is the plain scan evaluator)\n");
}

// Columnar relation storage + cross-guess delta solving against the
// hash-storage snapshot-rollback baseline (the PR 3 default tuning).
// Three arms per workload: base (hash, full re-solve per guess),
// columnar (auto storage, full re-solve — isolates the merge-scan
// effect) and delta (auto storage + delta solving — retained strata are
// not re-derived, which is where the join-attempt reduction comes
// from). Verdicts must be identical across all arms; the gated
// quantities are the suite-total join-attempt reduction and wall-clock
// speedup of the delta arm vs base. With --json the table is written to
// BENCH_columnar.json for the CI jq gate.
void PrintColumnarAblation(bool write_json) {
  Header("columnar/delta ablation on the Datalog backend (vs hash baseline)");
  Row({"instance", "joins(base)", "joins(delta)", "reduction", "merge_scans",
       "ms(base)", "ms(col)", "ms(delta)", "verdict"},
      13);
  Rule(9, 13);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"columnar_delta\",\n  \"rows\": [";
  bool first_row = true;
  bool all_parity = true;
  std::size_t total_joins_base = 0, total_joins_delta = 0;
  std::size_t total_merge_scans = 0;
  double total_ms_base = 0, total_ms_col = 0, total_ms_delta = 0;

  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 60'000;
    opts.max_guesses = 30'000;
    // Serial driver: one delta chain over the whole guess sequence, the
    // regime the cross-guess reuse is built for.
    opts.datalog.threads = 1;
    // Raw emitted query instances, as in PrintIndexAblation: with the
    // dlopt rule pruning on, little join work is left on the small
    // instances and this ablation would mostly measure the optimizer.
    opts.datalog.enable_dlopt = false;
    // Best-of-2 per arm: the gate compares wall-clock totals, so
    // single-run scheduler noise must not decide it.
    auto verify = [&](dl::StorageMode storage, bool delta, double* ms) {
      opts.datalog.engine.storage = storage;
      opts.datalog.engine.delta_solve = delta;
      Verdict v;
      for (int rep = 0; rep < 2; ++rep) {
        const double t = TimeMs([&] {
          v = verifier.Run(goal, opts);
        });
        if (rep == 0 || t < *ms) *ms = t;
      }
      return v;
    };
    double ms_base = 0, ms_col = 0, ms_delta = 0;
    const Verdict base = verify(dl::StorageMode::kHash, false, &ms_base);
    const Verdict col = verify(dl::StorageMode::kAuto, false, &ms_col);
    const Verdict del = verify(dl::StorageMode::kAuto, true, &ms_delta);
    const bool parity = base.result == col.result &&
                        base.result == del.result &&
                        base.witness == col.witness &&
                        base.witness == del.witness &&
                        base.guesses() == del.guesses();
    all_parity = all_parity && parity;
    total_joins_base += base.join_attempts();
    total_joins_delta += del.join_attempts();
    total_merge_scans += col.merge_scans();
    total_ms_base += ms_base;
    total_ms_col += ms_col;
    total_ms_delta += ms_delta;
    const double reduction =
        del.join_attempts() == 0
            ? 0.0
            : static_cast<double>(base.join_attempts()) /
                  static_cast<double>(del.join_attempts());
    const char* v =
        base.unsafe() ? "UNSAFE" : (base.safe() ? "SAFE" : "unknown");
    Row({name, std::to_string(base.join_attempts()),
         std::to_string(del.join_attempts()), StrCat(fmt(reduction), "x"),
         std::to_string(col.merge_scans()), fmt(ms_base), fmt(ms_col),
         fmt(ms_delta), StrCat(v, parity ? "" : " (MISMATCH)")},
        13);
    json += StrCat(
        first_row ? "" : ",", "\n    {\"name\": \"", name,
        "\", \"joins_base\": ", base.join_attempts(),
        ", \"joins_delta\": ", del.join_attempts(),
        ", \"join_reduction\": ", fmt(reduction),
        ", \"merge_scans\": ", col.merge_scans(),
        ", \"delta_retracts\": ",
        del.telemetry.counter(obs::metric::kDeltaRetracts),
        ", \"delta_reseeded_strata\": ",
        del.telemetry.counter(obs::metric::kDeltaReseededStrata),
        ", \"ms_base\": ", fmt(ms_base), ", \"ms_columnar\": ", fmt(ms_col),
        ", \"ms_delta\": ", fmt(ms_delta), ", \"verdict\": \"", v,
        "\", \"parity\": ", parity ? "true" : "false", "}");
    first_row = false;
  };

  // The guess-heavy regime the optimization targets: the mutual-exclusion
  // catalog protocols enumerate 8-384 makeP guesses whose emitted
  // programs differ only in the guess-axiom facts, so consecutive solves
  // share almost their whole fixpoint. The single-guess rows
  // (producer-consumer, TQBF) are kept for family coverage — delta
  // cannot help there by construction (there is no previous guess), so
  // they dilute the totals honestly rather than inflating them.
  for (BenchmarkCase& bench : StandardBenchmarks()) {
    run(bench.system, bench.name, std::nullopt);
  }
  const BenchmarkCase safe_pc = ProducerConsumerSafe(12);
  run(safe_pc.system, safe_pc.name, std::nullopt);
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);

  // Guess-heavy random systems (fixed seeds): hundreds to thousands of
  // makeP guesses over a non-trivial shared fixpoint, i.e. the
  // cross-guess redundancy the delta solver exists to remove. The
  // catalog protocols enumerate many guesses but their per-guess
  // fixpoints are tiny, so without these rows the suite totals would be
  // dominated by the single-guess TQBF row where delta is idle by
  // construction.
  auto run_random = [&](std::uint64_t seed, unsigned env_size,
                        unsigned dis_size) {
    Rng sys_rng(seed);
    RandomProgramOptions env_opts;
    env_opts.num_vars = 3;
    env_opts.num_regs = 3;
    env_opts.dom = 4;
    env_opts.size = env_size;
    env_opts.allow_cas = false;
    env_opts.allow_loops = false;
    RandomProgramOptions dis_opts = env_opts;
    dis_opts.size = dis_size;
    Program env = RandomProgram(sys_rng, env_opts, "env");
    Program dis = RandomProgram(sys_rng, dis_opts, "dis");
    Expected<ParamSystem> sys = ParamSystem::Builder()
                                    .Env(std::move(env))
                                    .Dis(std::move(dis))
                                    .Build();
    if (sys.ok()) {
      run(sys.value(), StrCat("rand-guessy(", seed, ")"), std::nullopt);
    }
  };
  run_random(40, 8, 7);
  run_random(16, 10, 8);
  run_random(239, 10, 8);
  run_random(283, 10, 8);
  run_random(338, 10, 8);

  const double join_reduction =
      total_joins_delta == 0 ? 0.0
                             : static_cast<double>(total_joins_base) /
                                   static_cast<double>(total_joins_delta);
  const double wall_speedup =
      total_ms_delta > 0 ? total_ms_base / total_ms_delta : 0.0;
  const char* parity = all_parity ? "OK" : "MISMATCH";
  const char* gate =
      (all_parity && (join_reduction >= 2.0 || wall_speedup >= 1.5))
          ? "OK"
          : "FAIL";
  std::printf(
      "totals: joins %zu -> %zu (%.2fx reduction), wall %.2fms -> %.2fms "
      "(%.2fx speedup; columnar-only %.2fms), merge scans %zu; parity %s; "
      "gate (2x joins or 1.5x wall) %s\n",
      total_joins_base, total_joins_delta, join_reduction, total_ms_base,
      total_ms_delta, wall_speedup, total_ms_col, total_merge_scans, parity,
      gate);
  std::printf(
      "(base = hash storage + snapshot rollback, the PR 3 default; delta "
      "= auto storage + cross-guess delta solving; joins compare base vs "
      "delta — columnar alone preserves join counts by construction and "
      "is reported for wall clock and merge_scans only)\n");

  json += StrCat(
      "\n  ],\n  \"totals\": {\n    \"joins_base\": ", total_joins_base,
      ",\n    \"joins_delta\": ", total_joins_delta,
      ",\n    \"join_reduction\": ", fmt(join_reduction),
      ",\n    \"ms_base\": ", fmt(total_ms_base),
      ",\n    \"ms_columnar\": ", fmt(total_ms_col),
      ",\n    \"ms_delta\": ", fmt(total_ms_delta),
      ",\n    \"wall_speedup\": ", fmt(wall_speedup),
      ",\n    \"merge_scans\": ", total_merge_scans,
      ",\n    \"parity\": \"", parity,
      "\",\n    \"gate\": \"", gate, "\"\n  }\n}\n");
  if (write_json) {
    std::ofstream out("BENCH_columnar.json");
    out << json;
    std::printf("wrote BENCH_columnar.json\n");
  }
}

// Parallel guess-level verification: the work-stealing driver at 1/2/4/8
// worker threads on guess-heavy workloads. The verdict, witness and tuple
// counts must be bit-identical at every thread count (the determinism
// rule of encoding/datalog_verifier.h); only the wall clock may change.
// Safe instances are the interesting regime — every guess must be solved,
// so the fan-out has real work to steal. With --json the rows are also
// written to a JSON file for CI artifact upload.
void PrintParallelScaling(const char* json_path) {
  Header("parallel scaling on the Datalog backend (worker threads)");
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  Row({"instance", "threads", "ms", "speedup", "verdict", "tuples",
       "parity"},
      13);
  Rule(7, 13);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"parallel_scaling\",\n";
  json += StrCat("  \"hardware_threads\": ",
                 std::thread::hardware_concurrency(), ",\n");
  json += "  \"workloads\": [";
  bool first_workload = true;

  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 60'000;
    opts.max_guesses = 30'000;
    Verdict base;
    double base_ms = 0;
    json += StrCat(first_workload ? "" : ",", "\n    {\"name\": \"", name,
                   "\", \"results\": [");
    first_workload = false;
    bool first_row = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      opts.datalog.threads = threads;
      Verdict v;
      const double ms = TimeMs([&] {
        v = verifier.Run(goal, opts);
      });
      if (threads == 1) {
        base = v;
        base_ms = ms;
      }
      // The determinism contract, checked on every row: identical
      // verdict, witness and aggregate statistics vs --threads=1.
      const bool parity = v.result == base.result &&
                          v.witness == base.witness &&
                          v.guesses() == base.guesses() &&
                          v.tuples() == base.tuples() &&
                          v.rule_firings() == base.rule_firings();
      const double speedup = ms > 0 ? base_ms / ms : 0.0;
      const char* verdict =
          v.unsafe() ? "UNSAFE" : (v.safe() ? "SAFE" : "unknown");
      Row({threads == 1 ? name : "", std::to_string(threads), fmt(ms),
           StrCat(fmt(speedup), "x"), verdict, std::to_string(v.tuples()),
           parity ? "ok" : "MISMATCH"},
          13);
      json += StrCat(first_row ? "" : ",", "\n      {\"threads\": ",
                     threads, ", \"ms\": ", fmt(ms),
                     ", \"speedup\": ", fmt(speedup), ", \"verdict\": \"",
                     verdict, "\", \"tuples\": ", v.tuples(),
                     ", \"parity\": ", parity ? "true" : "false", "}");
      first_row = false;
    }
    json += "\n    ]}";
  };

  for (int z : {8, 12}) {
    const BenchmarkCase safe_pc = ProducerConsumerSafe(z);
    run(safe_pc.system, safe_pc.name, std::nullopt);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  TqbfWitnessQuery q = TqbfLevelQuery(qbf, qbf.n);
  if (q.system.ok()) {
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", qbf.n, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  std::printf(
      "(speedup = ms(threads=1) / ms; parity checks verdict, witness and "
      "aggregate statistics against the serial run — 'ok' means "
      "bit-identical)\n");

  json += "\n  ]\n}\n";
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << json;
    std::printf("wrote %s\n", json_path);
  }
}

// Multi-shard scaling: stride sharding of the guess space at shard
// counts 1/2/4, the in-process analogue of `rapar_cli verify
// --shards=N`. Each family runs its shards concurrently (one worker
// per shard, each a single-threaded Datalog scan over its residue
// class), renders the per-shard envelopes and pushes them through the
// real MergeShardEnvelopes path; parity compares the merged
// verdict/exit_code/witness/guess count against the single-process
// envelope. The gate: on the TQBF safety workload, 4 shards must reach
// >= 1.5x over 1 shard ("SKIPPED" on machines with < 4 hardware
// threads — a 2-core runner cannot demonstrate 4-way speedup). With
// --json the rows and the gate land in BENCH_shards.json.
void PrintShardScaling(bool write_json) {
  Header("shard scaling on the Datalog backend (stride-sharded guesses)");
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  Row({"instance", "shards", "ms", "speedup", "verdict", "guesses",
       "parity"},
      13);
  Rule(7, 13);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"shard_scaling\",\n";
  json += StrCat("  \"hardware_threads\": ",
                 std::thread::hardware_concurrency(), ",\n");
  json += "  \"workloads\": [";
  bool first_workload = true;
  bool all_parity = true;
  double tqbf_speedup4 = 0.0;

  // The single-process-comparable slice of the merged envelope (the
  // remaining telemetry sums work performed, which legitimately exceeds
  // the single-process prefix — shards do not cancel each other).
  auto envelopes_agree = [](const std::string& single_env,
                            const std::string& merged_env) {
    Expected<JsonValue> s = ParseJson(single_env);
    Expected<JsonValue> m = ParseJson(merged_env);
    if (!s.ok() || !m.ok()) return false;
    auto str = [](const JsonValue& doc, const char* key) {
      const JsonValue* v = doc.Find(key);
      return v != nullptr ? v->string : std::string("<missing>");
    };
    if (str(s.value(), "verdict") != str(m.value(), "verdict")) return false;
    if (str(s.value(), "witness") != str(m.value(), "witness")) return false;
    const JsonValue* st = s.value().Find("telemetry");
    const JsonValue* mt = m.value().Find("telemetry");
    if (st == nullptr || mt == nullptr) return false;
    const JsonValue* sg = st->Find("verify.guesses");
    const JsonValue* mg = mt->Find("verify.guesses");
    if (sg == nullptr || mg == nullptr) return false;
    return sg->uinteger == mg->uinteger;
  };

  auto run = [&](const ParamSystem& sys, const std::string& name,
                 bool gated) {
    SafetyVerifier verifier(sys);
    auto shard_opts = [](std::size_t index, std::size_t count) {
      VerifierOptions o;
      o.backend = Backend::kDatalog;
      o.datalog.threads = 1;
      o.datalog.shard_index = index;
      o.datalog.shard_count = count;
      o.time_budget_ms = 60'000;
      o.max_guesses = 30'000;
      return o;
    };
    json += StrCat(first_workload ? "" : ",", "\n    {\"name\": \"", name,
                   "\", \"results\": [");
    first_workload = false;
    bool first_row = true;
    std::string single_env;
    double base_ms = 0;
    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{4}}) {
      std::vector<std::string> envs(shards);
      const double ms = TimeMs([&] {
        std::vector<std::thread> workers;
        for (std::size_t i = 0; i < shards; ++i) {
          workers.emplace_back([&, i] {
            const VerifierOptions o = shard_opts(i, shards);
            const Verdict v = verifier.Run(std::nullopt, o);
            envs[i] = VerdictToJson(v, o, "verify", sys.Signature());
          });
        }
        for (std::thread& w : workers) w.join();
      });
      std::string verdict = "unknown";
      std::string guesses = "-";
      bool parity = false;
      if (shards == 1) {
        base_ms = ms;
        single_env = envs[0];
        Expected<JsonValue> doc = ParseJson(single_env);
        if (doc.ok()) {
          if (const JsonValue* v = doc.value().Find("verdict")) {
            verdict = v->string;
          }
          if (const JsonValue* t = doc.value().Find("telemetry")) {
            if (const JsonValue* g = t->Find("verify.guesses")) {
              guesses = std::to_string(g->uinteger);
            }
          }
        }
        parity = true;  // the reference run is its own baseline
      } else {
        Expected<MergedShardEnvelope> merged =
            MergeShardEnvelopes(envs, /*pretty=*/true);
        if (merged.ok()) {
          verdict = merged.value().verdict;
          parity = envelopes_agree(single_env, merged.value().envelope_json);
          Expected<JsonValue> doc = ParseJson(merged.value().envelope_json);
          if (doc.ok()) {
            if (const JsonValue* t = doc.value().Find("telemetry")) {
              if (const JsonValue* g = t->Find("verify.guesses")) {
                guesses = std::to_string(g->uinteger);
              }
            }
          }
        } else {
          verdict = "merge error";
        }
      }
      all_parity = all_parity && parity;
      const double speedup = ms > 0 ? base_ms / ms : 0.0;
      if (gated && shards == 4) tqbf_speedup4 = speedup;
      Row({shards == 1 ? name : "", std::to_string(shards), fmt(ms),
           StrCat(fmt(speedup), "x"), verdict, guesses,
           parity ? "ok" : "MISMATCH"},
          13);
      json += StrCat(first_row ? "" : ",", "\n      {\"shards\": ", shards,
                     ", \"ms\": ", fmt(ms), ", \"speedup\": ", fmt(speedup),
                     ", \"verdict\": \"", verdict, "\", \"parity\": ",
                     parity ? "true" : "false", "}");
      first_row = false;
    }
    json += "\n    ]}";
  };

  const BenchmarkCase safe_pc = ProducerConsumerSafe(12);
  run(safe_pc.system, safe_pc.name, /*gated=*/false);
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", /*gated=*/true);

  const bool enough_cores = std::thread::hardware_concurrency() >= 4;
  const char* gate = !enough_cores      ? "SKIPPED"
                     : tqbf_speedup4 >= 1.5 ? "OK"
                                            : "FAIL";
  std::printf(
      "(speedup = ms(1 shard) / ms; parity checks the merged envelope's "
      "verdict, witness and guess count against the single-process run)\n");
  std::printf("shard parity: %s, tqbf speedup at 4 shards: %sx, gate: %s\n",
              all_parity ? "OK" : "MISMATCH", fmt(tqbf_speedup4).c_str(),
              gate);

  json += StrCat("\n  ],\n  \"totals\": {\n    \"parity\": \"",
                 all_parity ? "OK" : "MISMATCH",
                 "\",\n    \"tqbf_speedup_4\": ", fmt(tqbf_speedup4),
                 ",\n    \"gate\": \"", gate, "\"\n  }\n}\n");
  if (write_json) {
    std::ofstream out("BENCH_shards.json");
    out << json;
    std::printf("wrote BENCH_shards.json\n");
  }
}

// Observability ablation: the same verify with no trace sink installed
// vs a live TraceRecorder, plus the per-phase wall-clock breakdown the
// telemetry gauges record. Two acceptance properties are on display:
// the no-sink overhead of the instrumentation (ScopedSpan reduces to a
// pointer test; the bar is <= 5%, the observed cost is noise) and
// verdict neutrality (recording must not change the result). With
// --json the rows are written to BENCH_obs.json for CI upload.
void PrintObsAblation(bool write_json) {
  Header("observability ablation (trace off vs on, per-phase breakdown)");
  Row({"instance", "ms(off)", "ms(on)", "overhead", "events", "phases(ms)",
       "verdict"},
      15);
  Rule(7, 15);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"obs_ablation\",\n  \"rows\": [";
  bool first_row = true;

  auto run = [&](const ParamSystem& sys, const std::string& name,
                 Backend backend) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = backend;
    opts.concrete.env_threads = 2;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    // Interleave off/on runs and keep the best of 3 each, so the
    // overhead column measures the instrumentation, not cache warmup.
    double ms_off = 0, ms_on = 0;
    Verdict off, on;
    obs::TraceRecorder recorder;
    std::size_t events = 0;
    for (int rep = 0; rep < 3; ++rep) {
      opts.obs.trace = nullptr;
      const double off_ms = TimeMs([&] { off = verifier.Run(std::nullopt, opts); });
      if (rep == 0 || off_ms < ms_off) ms_off = off_ms;
      opts.obs.trace = &recorder;
      const double on_ms = TimeMs([&] { on = verifier.Run(std::nullopt, opts); });
      if (rep == 0 || on_ms < ms_on) ms_on = on_ms;
    }
    opts.obs.trace = nullptr;
    events = recorder.size() / 3;  // events per traced run
    const double pct =
        ms_off > 0 ? 100.0 * (ms_on - ms_off) / ms_off : 0.0;
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%", pct);
    namespace metric = obs::metric;
    const std::string phases =
        StrCat("pre=", fmt(on.telemetry.gauge(metric::kPhasePrepassMs)),
               " solve=", fmt(on.telemetry.gauge(metric::kPhaseSolveMs)),
               " wit=", fmt(on.telemetry.gauge(metric::kPhaseWitnessMs)),
               " total=", fmt(on.telemetry.gauge(metric::kPhaseTotalMs)));
    const char* v = on.unsafe() ? "UNSAFE" : (on.safe() ? "SAFE" : "unknown");
    const bool same = on.result == off.result && on.witness == off.witness;
    Row({name, fmt(ms_off), fmt(ms_on), overhead, std::to_string(events),
         phases, StrCat(v, same ? "" : " (MISMATCH)")},
        15);
    json += StrCat(
        first_row ? "" : ",", "\n    {\"name\": \"", name,
        "\", \"ms_off\": ", fmt(ms_off), ", \"ms_on\": ", fmt(ms_on),
        ", \"overhead_pct\": ", fmt(pct), ", \"events\": ", events,
        ", \"prepass_ms\": ", fmt(on.telemetry.gauge(metric::kPhasePrepassMs)),
        ", \"solve_ms\": ", fmt(on.telemetry.gauge(metric::kPhaseSolveMs)),
        ", \"witness_ms\": ", fmt(on.telemetry.gauge(metric::kPhaseWitnessMs)),
        ", \"total_ms\": ", fmt(on.telemetry.gauge(metric::kPhaseTotalMs)),
        ", \"verdict\": \"", v, "\", \"verdict_neutral\": ",
        same ? "true" : "false", "}");
    first_row = false;
  };

  for (int z : {8, 12}) {
    const BenchmarkCase safe_pc = ProducerConsumerSafe(z);
    run(safe_pc.system, StrCat(safe_pc.name, "/datalog"), Backend::kDatalog);
    run(safe_pc.system, StrCat(safe_pc.name, "/simplified"),
        Backend::kSimplifiedExplorer);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) {
    run(tqbf.value(), "tqbf(n=3)/datalog", Backend::kDatalog);
  }
  std::printf(
      "(ms are best-of-3; overhead compares no-sink runs against runs "
      "with a live TraceRecorder — the no-sink case is the one the <=5%% "
      "bar applies to, and it differs from 'off' only by a null pointer "
      "test per span)\n");

  json += "\n  ]\n}\n";
  if (write_json) {
    std::ofstream out("BENCH_obs.json");
    out << json;
    std::printf("wrote BENCH_obs.json\n");
  }
}

// Portfolio ablation: the racing driver (TMAI prepass, then simplified
// vs Datalog under a shared CancellationToken) against each backend
// alone. Three acceptance properties are on display: the win-rate
// breakdown (which stage actually answered), verdict parity against the
// exact Datalog backend on every instance, and the latency totals
// against the best single backend — "best single" is suite-level (the
// better of running the whole suite on simplified only or Datalog
// only), the choice a user without the portfolio would have to make up
// front. The race may only cost thread spawn plus the losers'
// cancellation-notice latency, so the totals ratio is gated at 1.05x in
// CI; the per-instance vs_best column compares against the per-instance
// oracle best and is informative only. With --json the table is written
// to BENCH_portfolio.json.
void PrintPortfolioAblation(bool write_json) {
  Header("portfolio ablation (racing driver vs single backends)");
  Row({"instance", "winner", "ms(port)", "ms(simpl)", "ms(datalog)",
       "vs_best", "parity"},
      14);
  Rule(7, 14);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"portfolio\",\n  \"rows\": [";
  bool first_row = true;
  int wins_tmai = 0, wins_simplified = 0, wins_datalog = 0;
  double total_portfolio_ms = 0, total_simplified_ms = 0,
         total_datalog_ms = 0, total_oracle_ms = 0;
  bool all_parity = true;

  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    // Best-of-2 per measurement: the CI gate compares totals at 1.05x,
    // so single-run scheduler noise on the heavy rows must not decide
    // it.
    auto verify = [&](Backend backend, double* ms) {
      opts.backend = backend;
      Verdict v;
      for (int rep = 0; rep < 2; ++rep) {
        const double t = TimeMs([&] {
          v = verifier.Run(goal, opts);
        });
        if (rep == 0 || t < *ms) *ms = t;
      }
      return v;
    };
    double ms_p = 0, ms_s = 0, ms_d = 0;
    const Verdict pv = verify(Backend::kPortfolio, &ms_p);
    const Verdict sv = verify(Backend::kSimplifiedExplorer, &ms_s);
    const Verdict dv = verify(Backend::kDatalog, &ms_d);
    (void)sv;
    // Winner is the suffix of the "portfolio:<stage>" backend tag.
    std::string winner = pv.backend;
    const std::string prefix = "portfolio:";
    if (winner.rfind(prefix, 0) == 0) winner = winner.substr(prefix.size());
    if (winner == "tmai") ++wins_tmai;
    else if (winner == "simplified") ++wins_simplified;
    else ++wins_datalog;
    const double oracle_ms = ms_s < ms_d ? ms_s : ms_d;
    total_portfolio_ms += ms_p;
    total_simplified_ms += ms_s;
    total_datalog_ms += ms_d;
    total_oracle_ms += oracle_ms;
    const double ratio = oracle_ms > 0 ? ms_p / oracle_ms : 0.0;
    // Parity is against the exact backend: the race must not change
    // the verdict (TMAI is sound, the other two are exact).
    const bool parity = pv.result == dv.result;
    all_parity = all_parity && parity;
    const char* v =
        pv.unsafe() ? "UNSAFE" : (pv.safe() ? "SAFE" : "unknown");
    Row({name, winner, fmt(ms_p), fmt(ms_s), fmt(ms_d),
         StrCat(fmt(ratio), "x"), parity ? "ok" : "MISMATCH"},
        14);
    json += StrCat(first_row ? "" : ",", "\n    {\"name\": \"", name,
                   "\", \"winner\": \"", winner,
                   "\", \"portfolio_ms\": ", fmt(ms_p),
                   ", \"simplified_ms\": ", fmt(ms_s),
                   ", \"datalog_ms\": ", fmt(ms_d),
                   ", \"ratio_vs_oracle\": ", fmt(ratio), ", \"verdict\": \"",
                   v, "\", \"parity\": ", parity ? "true" : "false", "}");
    first_row = false;
  };

  for (const BenchmarkCase& bench : StandardBenchmarks()) {
    run(bench.system, bench.name, std::nullopt);
  }
  for (int z : {4, 8}) {
    const BenchmarkCase safe_pc = ProducerConsumerSafe(z);
    run(safe_pc.system, safe_pc.name, std::nullopt);
  }
  // The heavy rows: the TQBF family dominates the totals, so the 1.05x
  // gate measures the race on real work rather than on the fixed
  // thread-spawn cost the sub-millisecond catalog rows amplify.
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  for (int level = 2; level <= qbf.n; ++level) {
    TqbfWitnessQuery q = TqbfLevelQuery(qbf, level);
    if (!q.system.ok()) continue;
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", level, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  const int total_wins = wins_tmai + wins_simplified + wins_datalog;
  const double best_single_ms = total_simplified_ms < total_datalog_ms
                                    ? total_simplified_ms
                                    : total_datalog_ms;
  const double total_ratio =
      best_single_ms > 0 ? total_portfolio_ms / best_single_ms : 0.0;
  const double ratio_vs_datalog =
      total_datalog_ms > 0 ? total_portfolio_ms / total_datalog_ms : 0.0;
  // The wall-clock gate needs actual parallelism: on a single hardware
  // thread the racers time-slice one core, so the portfolio costs about
  // the sum of the winner and the loser-until-cancel — roughly 2x by
  // construction, and no implementation can do better. The gate is
  // therefore skipped (not failed) there; CI runs on >= 2 cores.
  const unsigned hw = std::thread::hardware_concurrency();
  const char* ratio_gate = hw < 2              ? "SKIPPED"
                           : total_ratio <= 1.05 ? "OK"
                                                 : "FAIL";
  auto rate = [&](int wins) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f%%",
                  total_wins > 0 ? 100.0 * wins / total_wins : 0.0);
    return std::string(buf);
  };
  std::printf(
      "wins: tmai %d (%s), simplified %d (%s), datalog %d (%s)\n"
      "totals: portfolio %.2fms vs best-single %.2fms (%.2fx), vs "
      "datalog-only %.2fms (%.2fx), vs per-instance oracle %.2fms; "
      "parity %s; ratio gate (1.05x, %u hardware threads) %s\n",
      wins_tmai, rate(wins_tmai).c_str(), wins_simplified,
      rate(wins_simplified).c_str(), wins_datalog, rate(wins_datalog).c_str(),
      total_portfolio_ms, best_single_ms, total_ratio, total_datalog_ms,
      ratio_vs_datalog, total_oracle_ms, all_parity ? "OK" : "MISMATCH", hw,
      ratio_gate);
  std::printf(
      "(winner = the portfolio stage that produced the verdict; vs_best "
      "compares each row against the faster single exact backend on that "
      "instance — the oracle a user cannot pick in advance; the gated "
      "totals ratio instead compares whole-suite wall clock against the "
      "better fixed choice of backend)\n");

  json += StrCat(
      "\n  ],\n  \"totals\": {\n    \"wins\": {\"tmai\": ", wins_tmai,
      ", \"simplified\": ", wins_simplified, ", \"datalog\": ", wins_datalog,
      "},\n    \"portfolio_ms\": ", fmt(total_portfolio_ms),
      ",\n    \"simplified_ms\": ", fmt(total_simplified_ms),
      ",\n    \"datalog_ms\": ", fmt(total_datalog_ms),
      ",\n    \"best_single_ms\": ", fmt(best_single_ms),
      ",\n    \"oracle_ms\": ", fmt(total_oracle_ms),
      ",\n    \"ratio_vs_best\": ", fmt(total_ratio),
      ",\n    \"ratio_vs_datalog\": ", fmt(ratio_vs_datalog),
      ",\n    \"hardware_threads\": ", hw,
      ",\n    \"ratio_gate\": \"", ratio_gate,
      "\",\n    \"parity\": \"", all_parity ? "OK" : "MISMATCH",
      "\"\n  }\n}\n");
  if (write_json) {
    std::ofstream out("BENCH_portfolio.json");
    out << json;
    std::printf("wrote BENCH_portfolio.json\n");
  }
}

// TMAI domain ablation: the small-set value domain (PR 6) vs the
// relational must-domain (tmai/relational.h) vs the kAuto retry policy,
// on the benchmark catalog. Three acceptance properties are on display:
// the proof-rate ordering (relational must prove at least every case
// small-set proves — it only adds precision; the jq gate in CI enforces
// proof_rate_relational >= proof_rate_smallset), certificate validity
// (every kSafe verdict ships a certificate the independent checker
// accepts), and the portfolio win-rate shift (how many catalog races the
// TMAI stage now short-circuits that it lost under small-set). Latency
// shows what the precision costs: the relational fixpoint re-runs with
// pairwise tracking and up to max_strengthen_rounds pruning rounds,
// while kAuto pays that only on small-set kUnknown. With --json the
// table is written to BENCH_tmai_domains.json.
void PrintDomainAblation(bool write_json) {
  Header("TMAI domain ablation (small-set vs relational vs auto)");
  Row({"instance", "smallset", "ms", "relational", "ms", "auto", "ms",
       "cert"},
      13);
  Rule(8, 13);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  std::string json = "{\n  \"bench\": \"tmai_domains\",\n  \"rows\": [";
  bool first_row = true;
  int safe_cases = 0;
  int proved_smallset = 0, proved_relational = 0, proved_auto = 0;
  int certs_total = 0, certs_valid = 0;
  bool all_parity = true;

  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  suite.push_back(ProducerConsumerSafe(2));
  for (const BenchmarkCase& bench : suite) {
    const bool expected_safe =
        bench.expected_unsafe.has_value() && !*bench.expected_unsafe;
    if (expected_safe) ++safe_cases;
    const tmai::TmaiSystem tsys =
        tmai::TmaiSystem::FromSimpl(bench.system.simpl());
    struct DomainRun {
      bool safe = false;
      bool cert_valid = false;
      bool has_cert = false;
      double ms = 0;
    };
    DomainRun runs[3];
    const tmai::Domain domains[3] = {tmai::Domain::kSmallSet,
                                     tmai::Domain::kRelational,
                                     tmai::Domain::kAuto};
    for (int i = 0; i < 3; ++i) {
      tmai::TmaiOptions opts;
      opts.domain = domains[i];
      tmai::TmaiResult r;
      runs[i].ms = TimeMs([&] { r = tmai::RunTmai(tsys, {}, opts); });
      runs[i].safe = r.safe;
      if (r.safe) {
        runs[i].has_cert = r.certificate != nullptr;
        if (runs[i].has_cert) {
          ++certs_total;
          runs[i].cert_valid =
              tmai::CheckCertificate(tsys, *r.certificate).valid;
          if (runs[i].cert_valid) ++certs_valid;
        }
      }
    }
    if (expected_safe) {
      proved_smallset += runs[0].safe;
      proved_relational += runs[1].safe;
      proved_auto += runs[2].safe;
    }
    // Parity: no unsound proof (a kSafe on an expected-unsafe case), no
    // lost precision (relational/auto prove everything small-set does),
    // and every emitted certificate validates.
    bool parity = true;
    if (bench.expected_unsafe.value_or(false) &&
        (runs[0].safe || runs[1].safe || runs[2].safe)) {
      parity = false;
    }
    if (runs[0].safe && (!runs[1].safe || !runs[2].safe)) parity = false;
    for (const DomainRun& r : runs) {
      if (r.safe && (!r.has_cert || !r.cert_valid)) parity = false;
    }
    all_parity = all_parity && parity;
    auto verdict = [](const DomainRun& r) {
      return std::string(r.safe ? "SAFE" : "unknown");
    };
    const int row_certs =
        runs[0].has_cert + runs[1].has_cert + runs[2].has_cert;
    const int row_valid =
        runs[0].cert_valid + runs[1].cert_valid + runs[2].cert_valid;
    const std::string cert =
        StrCat(row_valid, "/", row_certs, parity ? "" : " MISMATCH");
    Row({bench.name, verdict(runs[0]), fmt(runs[0].ms), verdict(runs[1]),
         fmt(runs[1].ms), verdict(runs[2]), fmt(runs[2].ms), cert},
        13);
    json += StrCat(
        first_row ? "" : ",", "\n    {\"name\": \"", bench.name,
        "\", \"expected_safe\": ", expected_safe ? "true" : "false",
        ", \"smallset\": \"", verdict(runs[0]),
        "\", \"smallset_ms\": ", fmt(runs[0].ms), ", \"relational\": \"",
        verdict(runs[1]), "\", \"relational_ms\": ", fmt(runs[1].ms),
        ", \"auto\": \"", verdict(runs[2]),
        "\", \"auto_ms\": ", fmt(runs[2].ms),
        ", \"certificates_valid\": ", row_valid,
        ", \"certificates\": ", row_certs,
        ", \"parity\": ", parity ? "true" : "false", "}");
    first_row = false;
  }

  // Portfolio win-rate shift: how often the inline TMAI stage decides
  // the race before it starts, under the old domain vs the new default.
  int wins_smallset = 0, wins_auto = 0;
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    VerifierOptions popts;
    popts.backend = Backend::kPortfolio;
    popts.time_budget_ms = 20'000;
    popts.max_guesses = 30'000;
    popts.tmai.domain = tmai::Domain::kSmallSet;
    if (verifier.Run(std::nullopt, popts).backend == "portfolio:tmai") ++wins_smallset;
    popts.tmai.domain = tmai::Domain::kAuto;
    if (verifier.Run(std::nullopt, popts).backend == "portfolio:tmai") ++wins_auto;
  }

  auto rate = [&](int proved) {
    return safe_cases > 0 ? static_cast<double>(proved) / safe_cases : 0.0;
  };
  std::printf(
      "proof rate on the %d expected-safe catalog cases: smallset %d "
      "(%.2f), relational %d (%.2f), auto %d (%.2f)\n"
      "certificates: %d/%d valid; portfolio tmai-stage wins: smallset "
      "%d/%zu, auto %d/%zu; parity %s\n",
      safe_cases, proved_smallset, rate(proved_smallset), proved_relational,
      rate(proved_relational), proved_auto, rate(proved_auto), certs_valid,
      certs_total, wins_smallset, suite.size(), wins_auto, suite.size(),
      all_parity ? "OK" : "MISMATCH");
  std::printf(
      "(cert = valid/emitted invariant certificates on that row, checked "
      "with tmai::CheckCertificate; parity requires no unsound proof, "
      "relational >= smallset precision per case, and every certificate "
      "valid)\n");

  json += StrCat(
      "\n  ],\n  \"totals\": {\n    \"safe_cases\": ", safe_cases,
      ",\n    \"proved_smallset\": ", proved_smallset,
      ",\n    \"proved_relational\": ", proved_relational,
      ",\n    \"proved_auto\": ", proved_auto,
      ",\n    \"proof_rate_smallset\": ", fmt(rate(proved_smallset)),
      ",\n    \"proof_rate_relational\": ", fmt(rate(proved_relational)),
      ",\n    \"proof_rate_auto\": ", fmt(rate(proved_auto)),
      ",\n    \"certificates_valid\": ", certs_valid,
      ",\n    \"certificates_total\": ", certs_total,
      ",\n    \"portfolio_tmai_wins_smallset\": ", wins_smallset,
      ",\n    \"portfolio_tmai_wins_auto\": ", wins_auto,
      ",\n    \"parity\": \"", all_parity ? "OK" : "MISMATCH",
      "\"\n  }\n}\n");
  if (write_json) {
    std::ofstream out("BENCH_tmai_domains.json");
    out << json;
    std::printf("wrote BENCH_tmai_domains.json\n");
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction(const char* json_path) {
  rapar::PrintComparison();
  rapar::PrintDlOptAblation();
  rapar::PrintIndexAblation();
  rapar::PrintColumnarAblation(json_path != nullptr);
  rapar::PrintParallelScaling(json_path);
  rapar::PrintShardScaling(json_path != nullptr);
  rapar::PrintObsAblation(json_path != nullptr);
  rapar::PrintPortfolioAblation(json_path != nullptr);
  rapar::PrintDomainAblation(json_path != nullptr);
}

static void BM_Backend(benchmark::State& state) {
  std::vector<rapar::BenchmarkCase> suite = rapar::StandardBenchmarks();
  const rapar::BenchmarkCase& bench =
      suite[static_cast<std::size_t>(state.range(0))];
  rapar::SafetyVerifier verifier(bench.system);
  rapar::VerifierOptions opts;
  opts.backend = static_cast<rapar::Backend>(state.range(1));
  opts.concrete.env_threads = 2;
  opts.time_budget_ms = 20'000;
  opts.max_guesses = 30'000;
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt, opts);
    benchmark::DoNotOptimize(v.result);
  }
  state.SetLabel(bench.name + "/" +
                 (state.range(1) == 0   ? "simplified"
                  : state.range(1) == 1 ? "datalog"
                                        : "concrete"));
}
BENCHMARK(BM_Backend)
    ->ArgsProduct({{0, 2, 6, 8}, {0, 1, 2}});

// RAPAR_BENCH_MAIN plus a --json[=PATH] flag (stripped before the
// google-benchmark flag parser sees it).
int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_parallel.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  PrintReproduction(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
