// Theorem 3.4 / Theorem 4.1 head-to-head: the three backends on the
// benchmark corpus. The verdicts must coincide (sound & complete
// abstraction; correct encoding); the costs differ by design:
// the saturation explorer is the production path, the Datalog path
// realises the PSPACE argument, the concrete path is the baseline whose
// state space the parameterization removes.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/benchmarks.h"
#include "core/verifier.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintComparison() {
  Header("Backends head-to-head on the benchmark corpus");
  Row({"instance", "simplified", "ms", "datalog", "ms", "concrete(n=2)",
       "ms"},
      17);
  Rule(7, 17);
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    auto run = [&](Backend backend, double* ms) {
      VerifierOptions opts;
      opts.backend = backend;
      opts.concrete_env_threads = 2;
      opts.time_budget_ms = 20'000;
      opts.max_guesses = 30'000;
      Verdict v;
      *ms = TimeMs([&] { v = verifier.Verify(opts); });
      if (v.unsafe()) return std::string("UNSAFE");
      return std::string(v.safe() ? "SAFE" : "unknown");
    };
    double ms_s = 0, ms_d = 0, ms_c = 0;
    const std::string s = run(Backend::kSimplifiedExplorer, &ms_s);
    const std::string d = run(Backend::kDatalog, &ms_d);
    const std::string c = run(Backend::kConcrete, &ms_c);
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      return std::string(buf);
    };
    Row({bench.name, s, fmt(ms_s), d, fmt(ms_d), c, fmt(ms_c)}, 17);
  }
  std::printf(
      "(the Datalog backend may report 'unknown' when the guess "
      "enumeration exceeds its cap; 'concrete' verdicts are instance-"
      "level, not parameterized)\n");
}

// Datalog backend with the query-driven optimizer (src/dlopt/) on vs
// off: rules emitted by makeP vs rules actually evaluated, and the
// wall-clock effect. The TQBF family appears twice — the plain safety
// verdict (whose encoding is nearly tight) and the per-level witness MG
// queries of Theorem 5.1's induction, where backward demand slices away
// every role below the queried level.
void PrintDlOptAblation() {
  Header("dlopt ablation on the Datalog backend (rules emitted vs evaluated)");
  Row({"instance", "emitted", "evaluated", "pruned", "ms(on)", "ms(off)",
       "verdict"},
      15);
  Rule(7, 15);
  auto fmt_ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    Verdict on, off;
    const double ms_on = TimeMs([&] {
      on = goal.has_value() ? verifier.VerifyMessageGeneration(
                                  goal->first, goal->second, opts)
                            : verifier.Verify(opts);
    });
    opts.enable_dlopt = false;
    const double ms_off = TimeMs([&] {
      off = goal.has_value() ? verifier.VerifyMessageGeneration(
                                   goal->first, goal->second, opts)
                             : verifier.Verify(opts);
    });
    const std::size_t before = on.dlopt.rules_before;
    const std::size_t after = on.dlopt.rules_after;
    const double pct =
        before == 0 ? 0.0
                    : 100.0 * static_cast<double>(before - after) /
                          static_cast<double>(before);
    char pruned[32];
    std::snprintf(pruned, sizeof pruned, "%.0f%%", pct);
    const char* v = on.unsafe() ? "UNSAFE" : (on.safe() ? "SAFE" : "unknown");
    const char* v2 =
        off.unsafe() ? "UNSAFE" : (off.safe() ? "SAFE" : "unknown");
    Row({name, std::to_string(before), std::to_string(after), pruned,
         fmt_ms(ms_on), fmt_ms(ms_off),
         StrCat(v, v == v2 ? "" : " (MISMATCH)")},
        15);
  };
  for (const BenchmarkCase& bench : StandardBenchmarks()) {
    run(bench.system, bench.name, std::nullopt);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  for (int level = 0; level <= qbf.n; ++level) {
    TqbfWitnessQuery q = TqbfLevelQuery(qbf, level);
    if (!q.system.ok()) continue;
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", level, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  std::printf(
      "(emitted/evaluated are Verdict dlopt counts summed over guesses; "
      "the MG rows query the level-i witness message of the Theorem 5.1 "
      "induction — demand slicing drops the roles below level i)\n");
}

// Evaluation-core tuning (dl::EngineOptions) on vs off: argument-hash
// join indexes + cheapest-first body ordering + EDB snapshot reuse vs
// the plain nested-loop scan. join_attempts counts candidate tuples
// tested during body matching — the quantity indexing is built to cut.
// Verdicts must be identical (the tuning is result-preserving).
void PrintIndexAblation() {
  Header("engine index ablation on the Datalog backend (join attempts)");
  Row({"instance", "joins(on)", "joins(off)", "speedup", "ms(on)", "ms(off)",
       "verdict"},
      15);
  Rule(7, 15);
  auto fmt_ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };
  auto run = [&](const ParamSystem& sys, const std::string& name,
                 std::optional<std::pair<VarId, Value>> goal) {
    SafetyVerifier verifier(sys);
    VerifierOptions opts;
    opts.backend = Backend::kDatalog;
    opts.time_budget_ms = 20'000;
    opts.max_guesses = 30'000;
    // Evaluate the raw emitted query instances: with the dlopt rule
    // pruning on, little join work is left on the small instances and
    // the engine ablation would mostly measure the optimizer. Its
    // effect is measured separately in PrintDlOptAblation.
    opts.enable_dlopt = false;
    auto verify = [&] {
      return goal.has_value() ? verifier.VerifyMessageGeneration(
                                    goal->first, goal->second, opts)
                              : verifier.Verify(opts);
    };
    Verdict on, off;
    const double ms_on = TimeMs([&] { on = verify(); });
    opts.engine.use_index = false;
    opts.engine.reorder_joins = false;
    opts.engine.reuse_facts = false;
    const double ms_off = TimeMs([&] { off = verify(); });
    const double ratio =
        on.join_attempts == 0
            ? 0.0
            : static_cast<double>(off.join_attempts) /
                  static_cast<double>(on.join_attempts);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", ratio);
    const char* v = on.unsafe() ? "UNSAFE" : (on.safe() ? "SAFE" : "unknown");
    const char* v2 =
        off.unsafe() ? "UNSAFE" : (off.safe() ? "SAFE" : "unknown");
    Row({name, std::to_string(on.join_attempts),
         std::to_string(off.join_attempts), speedup, fmt_ms(ms_on),
         fmt_ms(ms_off), StrCat(v, v == v2 ? "" : " (MISMATCH)")},
        15);
  };
  for (int z : {4, 8, 12}) {
    // The unsafe instance early-exits on the first witness guess; the
    // safe variant must run every guess to a full fixpoint — the
    // join-heavy regime the indexes target.
    const BenchmarkCase unsafe_pc = ProducerConsumer(z);
    run(unsafe_pc.system, unsafe_pc.name, std::nullopt);
    const BenchmarkCase safe_pc = ProducerConsumerSafe(z);
    run(safe_pc.system, safe_pc.name, std::nullopt);
  }
  Rng rng(42);
  const Qbf qbf = RandomQbf(rng, 3, 3);
  Expected<ParamSystem> tqbf = TqbfSystem(qbf);
  if (tqbf.ok()) run(tqbf.value(), "tqbf(n=3) safety", std::nullopt);
  TqbfWitnessQuery q = TqbfLevelQuery(qbf, qbf.n);
  if (q.system.ok()) {
    run(q.system.value(), StrCat("tqbf(n=3) MG(a_", qbf.n, ")"),
        std::make_pair(q.goal_var, q.goal_value));
  }
  std::printf(
      "(joins = Verdict join_attempts summed over guesses; 'on' is the "
      "default tuning — indexes + reordering + EDB snapshot reuse; 'off' "
      "is the plain scan evaluator)\n");
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintComparison();
  rapar::PrintDlOptAblation();
  rapar::PrintIndexAblation();
}

static void BM_Backend(benchmark::State& state) {
  std::vector<rapar::BenchmarkCase> suite = rapar::StandardBenchmarks();
  const rapar::BenchmarkCase& bench =
      suite[static_cast<std::size_t>(state.range(0))];
  rapar::SafetyVerifier verifier(bench.system);
  rapar::VerifierOptions opts;
  opts.backend = static_cast<rapar::Backend>(state.range(1));
  opts.concrete_env_threads = 2;
  opts.time_budget_ms = 20'000;
  opts.max_guesses = 30'000;
  for (auto _ : state) {
    rapar::Verdict v = verifier.Verify(opts);
    benchmark::DoNotOptimize(v.result);
  }
  state.SetLabel(bench.name + "/" +
                 (state.range(1) == 0   ? "simplified"
                  : state.range(1) == 1 ? "datalog"
                                        : "concrete"));
}
BENCHMARK(BM_Backend)
    ->ArgsProduct({{0, 2, 6, 8}, {0, 1, 2}});

RAPAR_BENCH_MAIN()
