// Theorem 3.4 / Theorem 4.1 head-to-head: the three backends on the
// benchmark corpus. The verdicts must coincide (sound & complete
// abstraction; correct encoding); the costs differ by design:
// the saturation explorer is the production path, the Datalog path
// realises the PSPACE argument, the concrete path is the baseline whose
// state space the parameterization removes.
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "core/verifier.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintComparison() {
  Header("Backends head-to-head on the benchmark corpus");
  Row({"instance", "simplified", "ms", "datalog", "ms", "concrete(n=2)",
       "ms"},
      17);
  Rule(7, 17);
  std::vector<BenchmarkCase> suite = StandardBenchmarks();
  for (const BenchmarkCase& bench : suite) {
    SafetyVerifier verifier(bench.system);
    auto run = [&](Backend backend, double* ms) {
      VerifierOptions opts;
      opts.backend = backend;
      opts.concrete_env_threads = 2;
      opts.time_budget_ms = 20'000;
      opts.max_guesses = 30'000;
      Verdict v;
      *ms = TimeMs([&] { v = verifier.Verify(opts); });
      if (v.unsafe()) return std::string("UNSAFE");
      return std::string(v.safe() ? "SAFE" : "unknown");
    };
    double ms_s = 0, ms_d = 0, ms_c = 0;
    const std::string s = run(Backend::kSimplifiedExplorer, &ms_s);
    const std::string d = run(Backend::kDatalog, &ms_d);
    const std::string c = run(Backend::kConcrete, &ms_c);
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      return std::string(buf);
    };
    Row({bench.name, s, fmt(ms_s), d, fmt(ms_d), c, fmt(ms_c)}, 17);
  }
  std::printf(
      "(the Datalog backend may report 'unknown' when the guess "
      "enumeration exceeds its cap; 'concrete' verdicts are instance-"
      "level, not parameterized)\n");
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() { rapar::PrintComparison(); }

static void BM_Backend(benchmark::State& state) {
  std::vector<rapar::BenchmarkCase> suite = rapar::StandardBenchmarks();
  const rapar::BenchmarkCase& bench =
      suite[static_cast<std::size_t>(state.range(0))];
  rapar::SafetyVerifier verifier(bench.system);
  rapar::VerifierOptions opts;
  opts.backend = static_cast<rapar::Backend>(state.range(1));
  opts.concrete_env_threads = 2;
  opts.time_budget_ms = 20'000;
  opts.max_guesses = 30'000;
  for (auto _ : state) {
    rapar::Verdict v = verifier.Verify(opts);
    benchmark::DoNotOptimize(v.result);
  }
  state.SetLabel(bench.name + "/" +
                 (state.range(1) == 0   ? "simplified"
                  : state.range(1) == 1 ? "datalog"
                                        : "concrete"));
}
BENCHMARK(BM_Backend)
    ->ArgsProduct({{0, 2, 6, 8}, {0, 1, 2}});

RAPAR_BENCH_MAIN()
