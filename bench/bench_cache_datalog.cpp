// Lemmas 4.2–4.4: the Cache Datalog pipeline.
//
//  * Lemma 4.3: makeP emits Cache Datalog instances (<= 2 IDB body atoms)
//    whose evaluation decides the verification instance — cross-checked
//    against the saturation explorer on the benchmark corpus.
//  * Lemma 4.4: a cache of size O(Q0²) suffices — we measure the *minimal*
//    sufficient cache size on small instances and chart it against Q0².
//  * Lemma 4.2: the cache -> linear transformation preserves derivability
//    at polynomial size growth.
#include "bench/bench_util.h"
#include "core/benchmarks.h"
#include "datalog/cache.h"
#include "datalog/cache_to_linear.h"
#include "datalog/engine.h"
#include "encoding/datalog_verifier.h"
#include "encoding/makep.h"
#include "simplified/explorer.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintMakePShape() {
  Header("Lemma 4.3: makeP query instances on the benchmark corpus");
  Row({"instance", "guesses", "rules/guess", "verdict", "agrees"}, 20);
  Rule(5, 20);
  std::vector<BenchmarkCase> cases;
  cases.push_back(ProducerConsumer(1));
  cases.push_back(Barrier());
  cases.push_back(Rcu());
  cases.push_back(ChaseLevDeque());
  for (const BenchmarkCase& bench : cases) {
    DatalogVerifierOptions opts;
    opts.guess.max_guesses = 20'000;
    DatalogVerdict dv = DatalogVerify(bench.system.simpl(), opts);

    SimplExplorer ex(bench.system.simpl());
    SimplResult sr = ex.Check({});

    const std::size_t rules_per_guess =
        dv.queries_evaluated > 0 ? dv.total_rules / dv.queries_evaluated
                                 : 0;
    Row({bench.name, std::to_string(dv.guesses),
         std::to_string(rules_per_guess),
         dv.unsafe ? "UNSAFE" : (dv.exhaustive ? "SAFE" : "UNKNOWN"),
         dv.unsafe == sr.violation ? "yes" : "NO"},
        20);
  }
}

// A small MG instance family for the minimal-cache probe: env chain of
// depth d over one variable.
dl::Program ChainInstanceProg(int d, dl::Atom* goal) {
  // p0; p_{i+1} :- p_i — stands in for the message chains makeP produces;
  // for the real encodings the cache search is run on the makeP output
  // below.
  dl::Program prog;
  std::vector<dl::PredId> preds;
  for (int i = 0; i <= d; ++i) {
    preds.push_back(prog.AddPred("p" + std::to_string(i), 0));
  }
  prog.AddFact(dl::Atom{preds[0], {}});
  for (int i = 0; i < d; ++i) {
    prog.AddRule(
        dl::Rule{dl::Atom{preds[i + 1], {}}, {dl::Atom{preds[i], {}}}, {}});
  }
  *goal = dl::Atom{preds[d], {}};
  return prog;
}

void PrintCacheBound() {
  Header("Lemma 4.4: minimal sufficient cache size vs the O(Q0^2) bound");
  Row({"instance", "Q0", "Q0^2", "min cache k"}, 18);
  Rule(4, 18);

  // makeP outputs for the smallest corpus instances.
  std::vector<std::pair<std::string, BenchmarkCase>> cases;
  cases.emplace_back("rcu", Rcu());
  cases.emplace_back("producer-consumer", ProducerConsumer(1));
  for (auto& [name, bench] : cases) {
    bool complete = true;
    GuessEnumOptions gopts;
    std::vector<DisGuess> guesses =
        EnumerateDisGuesses(bench.system.simpl(), gopts, &complete);
    // Find a guess whose instance is derivable, then probe min cache.
    MakePOptions mopts;
    // MG goal: the value the env writer publishes.
    mopts.goal_message = {VarId(0), Value(1)};
    int mink = -1;
    for (const DisGuess& g : guesses) {
      MakePResult q = MakeP(bench.system.simpl(), g, mopts);
      if (!dl::Query(*q.prog, q.goal)) continue;
      dl::CacheQueryOptions copts;
      copts.max_states = 400'000;
      std::optional<int> k =
          dl::MinimalCacheSize(*q.prog, q.goal, 12, copts);
      if (k.has_value()) {
        mink = *k;
        break;
      }
    }
    const int q0 = bench.system.Q0();
    Row({name, std::to_string(q0), std::to_string(q0 * q0),
         mink >= 0 ? std::to_string(mink) : "(n/a)"},
        18);
  }
  std::printf(
      "(minimal caches are far below the Q0^2 worst-case bound, as the "
      "lemma's compact-computation argument predicts)\n");
}

void PrintCacheToLinear() {
  Header("Lemma 4.2: cache -> linear Datalog transformation");
  Row({"chain depth", "k", "|Prog'| rules", "linear", "agrees"}, 16);
  Rule(5, 16);
  for (int d : {3, 5}) {
    for (int k : {2, 3}) {
      dl::Atom goal;
      dl::Program prog = ChainInstanceProg(d, &goal);
      dl::LinearisedQuery lin = dl::CacheToLinear(prog, goal, k);
      const bool cache_says = dl::CacheQuery(prog, goal, k).derivable;
      const bool linear_says = dl::Query(lin.prog, lin.goal);
      Row({std::to_string(d), std::to_string(k),
           std::to_string(lin.prog.size()),
           lin.prog.IsLinear() ? "yes" : "NO",
           cache_says == linear_says ? "yes" : "NO"},
          16);
    }
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintMakePShape();
  rapar::PrintCacheBound();
  rapar::PrintCacheToLinear();
}

static void BM_MakePEmit(benchmark::State& state) {
  rapar::BenchmarkCase bench = rapar::Rcu();
  bool complete = true;
  std::vector<rapar::DisGuess> guesses = rapar::EnumerateDisGuesses(
      bench.system.simpl(), {}, &complete);
  rapar::MakePOptions opts;
  opts.goal_message = {rapar::VarId(0), rapar::Value(1)};
  for (auto _ : state) {
    rapar::MakePResult q =
        rapar::MakeP(bench.system.simpl(), guesses[0], opts);
    benchmark::DoNotOptimize(q.prog->size());
  }
}
BENCHMARK(BM_MakePEmit);

static void BM_DatalogQueryOnMakeP(benchmark::State& state) {
  rapar::BenchmarkCase bench = rapar::Rcu();
  bool complete = true;
  std::vector<rapar::DisGuess> guesses = rapar::EnumerateDisGuesses(
      bench.system.simpl(), {}, &complete);
  rapar::MakePOptions opts;
  opts.goal_message = {rapar::VarId(0), rapar::Value(1)};
  rapar::MakePResult q =
      rapar::MakeP(bench.system.simpl(), guesses[0], opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rapar::dl::Query(*q.prog, q.goal));
  }
}
BENCHMARK(BM_DatalogQueryOnMakeP);

static void BM_CacheQueryChain(benchmark::State& state) {
  rapar::dl::Atom goal;
  rapar::dl::Program prog = [&] {
    // chain depth from the benchmark argument
    rapar::dl::Program p;
    std::vector<rapar::dl::PredId> preds;
    const int d = static_cast<int>(state.range(0));
    for (int i = 0; i <= d; ++i) {
      preds.push_back(p.AddPred("p" + std::to_string(i), 0));
    }
    p.AddFact(rapar::dl::Atom{preds[0], {}});
    for (int i = 0; i < d; ++i) {
      p.AddRule(rapar::dl::Rule{
          rapar::dl::Atom{preds[i + 1], {}},
          {rapar::dl::Atom{preds[i], {}}},
          {}});
    }
    goal = rapar::dl::Atom{preds[d], {}};
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rapar::dl::CacheQuery(prog, goal, 2).derivable);
  }
}
BENCHMARK(BM_CacheQueryChain)->Arg(4)->Arg(8);

RAPAR_BENCH_MAIN()
