// Figure 6 / Theorem 5.1: the TQBF reduction. For random QBF of growing
// alternation depth we (a) check the verifier's answer against direct
// evaluation (the correctness of the reduction), and (b) chart the cost of
// deciding the generated env(nocas,acyc) PureRA programs — the
// PSPACE-hardness made tangible.
#include "bench/bench_util.h"
#include "core/verifier.h"
#include "lang/classify.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"

namespace rapar {
namespace {

using benchutil::Header;
using benchutil::Row;
using benchutil::Rule;
using benchutil::TimeMs;

void PrintAgreement() {
  Header("Figure 6: TQBF via the PureRA reduction vs direct evaluation");
  Row({"depth n", "|vars(Psi)|", "shared vars", "agree", "true",
       "avg ms"},
      14);
  Rule(6, 14);
  Rng rng(4242);
  for (int n = 0; n <= 3; ++n) {
    const int kRuns = 8;
    int agree = 0, truths = 0;
    double ms_total = 0;
    std::size_t shared_vars = 0;
    for (int i = 0; i < kRuns; ++i) {
      Qbf qbf = RandomQbf(rng, n, 4 + 2 * n);
      Expected<ParamSystem> sys = TqbfSystem(qbf);
      shared_vars = sys.value().vars().size();
      SafetyVerifier verifier(sys.value());
      Verdict v;
      VerifierOptions opts;
      opts.time_budget_ms = 60'000;
      ms_total += TimeMs([&] { v = verifier.Run(std::nullopt, opts); });
      const bool direct = EvalQbf(qbf);
      if (direct) ++truths;
      if (v.unsafe() == direct) ++agree;
    }
    Row({std::to_string(n), std::to_string(2 * n + 1),
         std::to_string(shared_vars),
         std::to_string(agree) + "/" + std::to_string(kRuns),
         std::to_string(truths), std::to_string(ms_total / kRuns)},
        14);
  }
}

void PrintProgramShape() {
  Header("Reduction output shape (PureRA check)");
  Rng rng(7);
  Row({"depth n", "class", "PureRA", "CFA edges"}, 18);
  Rule(4, 18);
  for (int n = 0; n <= 3; ++n) {
    Qbf qbf = RandomQbf(rng, n, 4);
    Program prog = TqbfToPureRa(qbf);
    Classification c = Classify(prog);
    Cfa cfa = Cfa::Build(prog);
    Row({std::to_string(n), c.ToString(), c.pure_ra ? "yes" : "NO",
         std::to_string(cfa.edges().size())},
        18);
  }
}

}  // namespace
}  // namespace rapar

static void PrintReproduction() {
  rapar::PrintAgreement();
  rapar::PrintProgramShape();
}

static void BM_TqbfVerify(benchmark::State& state) {
  rapar::Rng rng(1000 + state.range(0));
  rapar::Qbf qbf =
      rapar::RandomQbf(rng, static_cast<int>(state.range(0)), 5);
  rapar::Expected<rapar::ParamSystem> sys = rapar::TqbfSystem(qbf);
  rapar::SafetyVerifier verifier(sys.value());
  for (auto _ : state) {
    rapar::Verdict v = verifier.Run(std::nullopt);
    benchmark::DoNotOptimize(v.result);
  }
}
BENCHMARK(BM_TqbfVerify)->DenseRange(0, 2);

static void BM_TqbfDirectEval(benchmark::State& state) {
  rapar::Rng rng(1000 + state.range(0));
  rapar::Qbf qbf =
      rapar::RandomQbf(rng, static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rapar::EvalQbf(qbf));
  }
}
BENCHMARK(BM_TqbfDirectEval)->DenseRange(0, 2);

RAPAR_BENCH_MAIN()
