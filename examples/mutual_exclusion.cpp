// Mutual-exclusion algorithms under Release-Acquire.
//
// Runs the classic entry protocols from the paper's benchmark
// classification (§1) through the verifier and prints which of them keep
// their critical sections exclusive under RA. The punchline matches
// folklore: fence-free Peterson/Dekker/Lamport are broken under RA, while
// the CAS-based test-and-set lock is correct — and CAS is exactly what
// the dis threads of the decidable class may use.
#include <cstdio>

#include "core/benchmarks.h"
#include "core/verifier.h"

int main() {
  std::vector<rapar::BenchmarkCase> cases;
  cases.push_back(rapar::PetersonRa());
  cases.push_back(rapar::DekkerFences());
  cases.push_back(rapar::Lamport2Ra());
  cases.push_back(rapar::Spinlock());

  std::printf("%-18s %-38s %-10s %s\n", "algorithm", "class", "verdict",
              "meaning");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (const rapar::BenchmarkCase& bench : cases) {
    rapar::SafetyVerifier verifier(bench.system);
    rapar::Verdict v = verifier.Run(std::nullopt);
    const char* verdict = v.unsafe()  ? "UNSAFE"
                          : v.safe()  ? "SAFE"
                                      : "UNKNOWN";
    const char* meaning =
        v.unsafe() ? "critical sections can overlap under RA"
                   : "mutual exclusion holds under RA";
    std::printf("%-18s %-38s %-10s %s\n", bench.name.c_str(),
                bench.paper_class.c_str(), verdict, meaning);
  }

  // Show one witness in full: how Peterson breaks.
  rapar::BenchmarkCase peterson = rapar::PetersonRa();
  rapar::SafetyVerifier verifier(peterson.system);
  rapar::Verdict v = verifier.Run(std::nullopt);
  if (v.unsafe()) {
    std::printf("\nHow Peterson breaks (abstract witness run):\n%s",
                v.witness.c_str());
  }
  return 0;
}
