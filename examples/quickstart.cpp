// Quickstart: write two Com programs, build a parameterized system, and
// verify it under the Release-Acquire semantics.
//
// The scenario is the paper's running example (Figure 1/3): unboundedly
// many producers and one consumer. The consumer wants to observe the
// values 1 and 2 on x, in that order; with at least two producers this is
// possible, so the parameterized system is unsafe — and the verifier also
// reports how many env threads suffice to exhibit the behaviour (§4.3).
#include <cstdio>

#include "core/verifier.h"
#include "lang/parser.h"

int main() {
  // Programs are plain text (see lang/parser.h for the grammar).
  const char* producer_src = R"(
    program producer
    vars x y
    regs r s
    dom 4
    begin
      r := y;            // wait for the start flag
      assume (r == 1);
      choice {           // publish 1 or 2
        s := 1;
        x := s
      } or {
        s := 2;
        x := s
      }
    end
  )";
  const char* consumer_src = R"(
    program consumer
    vars x y
    regs s one
    dom 4
    begin
      one := 1;
      y := one;          // release the producers
      s := x;
      assume (s == 1);   // observe 1 ...
      s := x;
      assume (s == 2);   // ... then 2
      assert false       // the behaviour we ask about
    end
  )";

  rapar::Expected<rapar::Program> producer =
      rapar::ParseProgram(producer_src);
  rapar::Expected<rapar::Program> consumer =
      rapar::ParseProgram(consumer_src);
  if (!producer.ok() || !consumer.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!producer.ok() ? producer.error() : consumer.error())
                     .c_str());
    return 1;
  }

  // env(nocas) || dis(acyc): arbitrarily many producers, one consumer.
  rapar::ParamSystem::Builder builder;
  builder.Env(std::move(producer).value())
      .Dis(std::move(consumer).value());
  rapar::Expected<rapar::ParamSystem> system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "system error: %s\n", system.error().c_str());
    return 1;
  }
  std::printf("system class: %s\n", system.value().Signature().c_str());

  rapar::SafetyVerifier verifier(system.value());
  rapar::Verdict verdict = verifier.Run(std::nullopt);
  std::printf("verdict: %s\n", verdict.ToString().c_str());
  if (verdict.unsafe()) {
    std::printf("\nwitness run (abstract, simplified semantics):\n%s",
                verdict.witness.c_str());
    if (verdict.env_thread_bound.has_value()) {
      std::printf("\n=> %lld env thread(s) suffice to exhibit this.\n",
                  static_cast<long long>(*verdict.env_thread_bound));
    }
  }

  // Message-generation query (§4.1): can the message (x, 2) ever exist?
  rapar::VarId x = system.value().vars().Find("x");
  rapar::Verdict mg = verifier.Run(std::pair{x, rapar::Value{2}});
  std::printf("\nMG (x,2): %s\n", mg.ToString().c_str());
  // And a value nobody writes:
  rapar::Verdict mg3 = verifier.Run(std::pair{x, rapar::Value{3}});
  std::printf("MG (x,3): %s\n", mg3.ToString().c_str());
  return 0;
}
