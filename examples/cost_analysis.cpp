// How many env threads does a bug need? (§4.3, Figure 5)
//
// Parameterization asks about *some* instance; the cost annotation of the
// witness dependency graph gives a concrete number of env threads that
// suffices. For the producer-consumer family the cost of the goal message
// is exactly the consumer's loop bound z — and we confirm concretely that
// z producers reach the bug while z-1 do not.
#include <cstdio>

#include "core/benchmarks.h"
#include "core/verifier.h"
#include "depgraph/dep_graph.h"
#include "simplified/explorer.h"

int main() {
  std::printf("%-6s %-12s %-22s %-22s\n", "z", "cost(msg#)",
              "concrete, n = cost", "concrete, n = cost-1");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (int z = 1; z <= 5; ++z) {
    rapar::BenchmarkCase pc = rapar::ProducerConsumer(z);
    rapar::SafetyVerifier verifier(pc.system);

    rapar::Verdict v = verifier.Run(std::nullopt);
    if (!v.unsafe() || !v.env_thread_bound.has_value()) {
      std::printf("%-6d (unexpectedly safe)\n", z);
      continue;
    }
    const long long cost = *v.env_thread_bound;

    auto concrete = [&](int n) {
      rapar::VerifierOptions opts;
      opts.backend = rapar::Backend::kConcrete;
      opts.concrete.env_threads = n;
      opts.time_budget_ms = 30'000;
      rapar::Verdict cv = verifier.Run(std::nullopt, opts);
      if (cv.unsafe()) return "bug reached";
      return cv.safe() ? "bug NOT reached" : "(budget exceeded)";
    };

    std::printf("%-6d %-12lld %-22s %-22s\n", z, cost,
                concrete(static_cast<int>(cost)),
                cost >= 2 ? concrete(static_cast<int>(cost) - 1) : "n/a");
  }

  // Show one dependency graph in dot format (Figure 5's shape).
  rapar::BenchmarkCase pc = rapar::ProducerConsumer(3);
  rapar::SimplExplorer explorer(pc.system.simpl());
  rapar::SimplExplorerOptions opts;
  rapar::SimplResult r = explorer.Check(opts);
  if (r.violation) {
    rapar::DepGraph g = rapar::DepGraph::Build(pc.system.simpl(), r.witness);
    std::printf("\ndependency graph for z=3 (graphviz):\n%s",
                g.ToDot(pc.system.vars()).c_str());
  }
  return 0;
}
