// Theorem 1.1, run forwards: loop-free env threads *with CAS* simulate a
// counter machine — the mechanism behind the undecidability of env(acyc).
//
// Each env thread executes at most one machine step. CAS adjacency on a
// lock variable forces the steps into one exact chain, and the RA view
// carried through the lock message hands the machine state from step to
// step. We run the generated program under the *concrete* RA semantics
// with increasing thread counts and watch the simulation reach the halt
// state exactly when enough one-shot threads exist.
#include <cstdio>

#include "lowerbound/counter_machine.h"
#include "ra/explorer.h"

int main() {
  // A machine computing: inc c0 twice, move c0 to c1, halt when c0 == 0.
  //   q0 -inc c0-> q1 -inc c0-> q2
  //   q2: jz c0 -> q5(halt) / nonzero -> q3
  //   q3 -dec c0-> q4 -inc c1-> q2
  rapar::CounterMachine m;
  m.num_states = 6;
  m.initial = 0;
  m.halt = 5;
  using Op = rapar::CounterMachine::Op;
  m.instrs = {
      {Op::kInc, 0, 0, 1, 0}, {Op::kInc, 0, 1, 2, 0},
      {Op::kJz, 0, 2, 5, 3},  {Op::kDec, 0, 3, 4, 0},
      {Op::kInc, 1, 4, 2, 0},
  };
  const int kBound = 3;

  std::printf("reference semantics: machine %s\n",
              rapar::MachineHalts(m, kBound, 64) ? "halts" : "does not halt");

  rapar::Program prog = rapar::CounterMachineToEnvCas(m, kBound);
  std::printf("\ngenerated env(acyc)+CAS program:\n%s\n",
              prog.ToString().c_str());

  rapar::Cfa cfa = rapar::Cfa::Build(prog);
  // The halting run needs 9 machine steps (2 inc, then 2 iterations of
  // jz/dec/inc plus the final jz) plus one observer thread.
  for (int n = 2; n <= 10; ++n) {
    std::vector<const rapar::Cfa*> threads(static_cast<std::size_t>(n),
                                           &cfa);
    rapar::RaExplorer explorer(threads, prog.dom(), prog.vars().size(),
                               {0, static_cast<std::size_t>(n)});
    rapar::RaExplorerOptions opts;
    opts.max_states = 800'000;
    opts.time_budget_ms = 30'000;
    rapar::RaResult r = explorer.CheckSafety(opts);
    std::printf("n = %2d threads: halt %-13s (%zu states%s)\n", n,
                r.violation ? "REACHED" : "not reached", r.states,
                r.exhaustive ? "" : ", bounded");
    if (r.violation) break;
  }
  return 0;
}
