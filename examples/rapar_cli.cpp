// rapar_cli — command-line front end for the verifier.
//
//   rapar_cli verify --env FILE [--dis FILE]... [options]
//   rapar_cli mg     --env FILE [--dis FILE]... --var NAME --val N [options]
//   rapar_cli dump-datalog --env FILE [--dis FILE]... [--var NAME --val N]
//   rapar_cli dlanalyze --env FILE [--dis FILE]... [--guess N] [--dot]
//   rapar_cli classify FILE...
//   rapar_cli lint [--env FILE] [--dis FILE]... [FILE...]
//   rapar_cli certcheck --env FILE [--dis FILE]... --cert FILE
//   rapar_cli serve [--threads N] [--cache-entries N] [--cache-bytes N]
//
// Every subcommand answers `--help` with its own flag list. Flags are
// declared once in the kFlags table below — name, arity, applicable
// subcommands, help text — so parsing, validation and help stay in sync.
// An unknown flag (or one that does not apply to the subcommand) is a
// usage error: exit 3.
//
// lint runs the analysis passes (reachability, liveness, constant
// propagation, footprints) and reports diagnostics in compiler format.
// certcheck re-validates a TMAI invariant certificate (the "certificate"
// object a safe `verify --backend=tmai --format=json` run embeds in its
// envelope — see tmai/certcheck.h) against the system, without re-running
// the fixpoint. --cert accepts either the bare certificate object or a
// whole verdict envelope. Exit 0 = valid, 1 = invalid, 3 = usage error.
// dlanalyze runs makeP for one guess (--guess N, default 0) and reports
// the static analysis of the emitted Datalog program; --dot prints the
// predicate dependency graph in Graphviz format instead.
// serve runs the long-lived verification daemon (core/serve.h): one JSON
// request per stdin line, one result envelope per stdout line (or a
// {"requests":[...]} batch per line, answered as {"responses":[...]}),
// with a persistent worker pool, warm per-worker Datalog engines and a
// content-addressed verdict cache. EOF on stdin shuts it down (exit 0).
// verify/mg with --backend=datalog additionally support multi-process
// sharding of the guess scan (--shards=N spawns one subprocess per
// residue class of the enumeration and merges the envelopes under
// first-terminating-event-wins, bit-identical to a single-process run)
// and checkpoint/resume (--checkpoint=FILE, --resume=FILE) — DESIGN.md
// §14 and core/shard.h.
//
// Machine-readable output (--format=json) uses the stable envelopes of
// core/result_json.h: verify/mg emit the verdict envelope (schema_version,
// verdict, exit_code, witness, options echo, telemetry), lint/dlanalyze
// the diagnostics envelope. --trace=FILE writes a Chrome trace-event JSON
// of the run (open in Perfetto or chrome://tracing); --metrics prints the
// telemetry registry after the verdict.
//
// Exit code: 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 3 = usage/input error.
// For lint/dlanalyze: 0 = clean (notes allowed), 1 = warnings/errors.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include <optional>
#include <utility>

#include "analysis/diagnostics.h"
#include "analysis/footprint.h"
#include "analysis/prepass.h"
#include "common/json.h"
#include "core/result_json.h"
#include "core/serve.h"
#include "core/shard.h"
#include "core/verifier.h"
#include "dlopt/dl_diagnostics.h"
#include "encoding/makep.h"
#include "lang/classify.h"
#include "lang/parser.h"
#include "lang/transform.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tmai/certcheck.h"
#include "tmai/tmai.h"
#include "tmai/tmai_diagnostics.h"

namespace {

struct Options {
  std::string command;
  std::string env_file;
  std::vector<std::string> dis_files;
  std::vector<std::string> files;  // classify / bare lint inputs
  std::string backend = "simplified";
  int threads = 2;
  bool threads_set = false;
  std::string engine_storage = "hash";
  bool delta_solve = false;
  std::string tmai_domain = "auto";
  int tmai_max_iterations = 64;
  int tmai_widening_delay = 8;
  int tmai_value_set_limit = 16;
  std::string cert_file;
  int unroll = 0;
  long long budget_ms = 30'000;
  bool witness = false;
  std::string goal_var;
  int goal_val = -1;
  std::string format = "text";
  int guess_index = 0;
  bool dot = false;
  std::string trace_file;
  bool metrics = false;
  bool help = false;
  long long cache_entries = 1024;
  long long cache_bytes = 64ll << 20;
  bool pretty = false;
  bool cert_revalidate = true;
  // Sharding / checkpoint-resume (datalog backend only).
  long long shards = 1;
  long long shard_index = -1;  // -1 = unset: orchestrate all shards
  std::string checkpoint_file;
  std::string resume_file;
  long long checkpoint_every = 0;  // 0 = default (64) when --checkpoint set
  long long scan_limit = 0;
};

// --- declarative flag table -------------------------------------------------

struct FlagSpec {
  const char* name;        // "--env"
  bool takes_value;
  const char* value_name;  // shown in help; null for boolean flags
  // Space-separated subcommands the flag applies to.
  const char* commands;
  const char* help;
  void (*apply)(Options&, const char*);
};

constexpr char kAllCommands[] =
    "verify mg dump-datalog dlanalyze classify lint certcheck serve";

const FlagSpec kFlags[] = {
    {"--env", true, "FILE", "verify mg dump-datalog dlanalyze lint certcheck",
     "env thread program",
     [](Options& o, const char* v) { o.env_file = v; }},
    {"--dis", true, "FILE", "verify mg dump-datalog dlanalyze lint certcheck",
     "add a dis thread program (repeatable)",
     [](Options& o, const char* v) { o.dis_files.push_back(v); }},
    {"--backend", true, "B", "verify mg",
     "simplified|datalog|concrete|tmai|portfolio (default simplified)",
     [](Options& o, const char* v) { o.backend = v; }},
    {"--threads", true, "N", "verify mg serve",
     "concrete: env threads in the instance (default 2); datalog: worker "
     "threads (default 0 = all hardware threads, 1 = serial); serve: "
     "request-pool workers (default 0 = all hardware threads)",
     [](Options& o, const char* v) {
       o.threads = std::atoi(v);
       o.threads_set = true;
     }},
    {"--unroll", true, "K", "verify mg dump-datalog dlanalyze certcheck",
     "unroll bound for dis loops (default 0 = reject loops)",
     [](Options& o, const char* v) { o.unroll = std::atoi(v); }},
    {"--engine-storage", true, "M", "verify mg",
     "Datalog relation storage: hash|columnar|auto (default hash; auto "
     "picks sorted columnar runs per predicate growth class)",
     [](Options& o, const char* v) { o.engine_storage = v; }},
    {"--delta-solve", false, nullptr, "verify mg",
     "Datalog backend: carry derived facts across makeP guesses and "
     "re-derive only dirty strata (verdict-identical; see DESIGN.md)",
     [](Options& o, const char*) { o.delta_solve = true; }},
    {"--tmai-domain", true, "D", "verify mg",
     "TMAI abstract domain: smallset|relational|auto (default auto = "
     "small-set first, relational retry on unknown)",
     [](Options& o, const char* v) { o.tmai_domain = v; }},
    {"--tmai-max-iterations", true, "N", "verify mg",
     "TMAI interference fixpoint rounds before giving up (default 64)",
     [](Options& o, const char* v) { o.tmai_max_iterations = std::atoi(v); }},
    {"--tmai-widening-delay", true, "N", "verify mg",
     "TMAI joins at one CFA node before disjuncts widen (default 8)",
     [](Options& o, const char* v) { o.tmai_widening_delay = std::atoi(v); }},
    {"--tmai-value-set-limit", true, "N", "verify mg",
     "TMAI explicit value-set size beyond which a set becomes top "
     "(default 16)",
     [](Options& o, const char* v) {
       o.tmai_value_set_limit = std::atoi(v);
     }},
    {"--cert", true, "FILE", "certcheck",
     "certificate JSON to validate (bare object, or a verify/mg "
     "--format=json envelope containing one)",
     [](Options& o, const char* v) { o.cert_file = v; }},
    {"--budget-ms", true, "N", "verify mg",
     "wall-clock budget in ms, 0 = unlimited (default 30000)",
     [](Options& o, const char* v) { o.budget_ms = std::atoll(v); }},
    {"--witness", false, nullptr, "verify mg",
     "print the witness run on UNSAFE",
     [](Options& o, const char*) { o.witness = true; }},
    {"--var", true, "NAME", "mg dump-datalog dlanalyze",
     "goal message variable",
     [](Options& o, const char* v) { o.goal_var = v; }},
    {"--val", true, "N", "mg dump-datalog dlanalyze", "goal message value",
     [](Options& o, const char* v) { o.goal_val = std::atoi(v); }},
    {"--format", true, "F", "verify mg lint dlanalyze certcheck",
     "text|json (default text); json uses the stable schema of "
     "core/result_json.h",
     [](Options& o, const char* v) { o.format = v; }},
    {"--guess", true, "N", "dlanalyze", "which makeP guess to analyze",
     [](Options& o, const char* v) { o.guess_index = std::atoi(v); }},
    {"--dot", false, nullptr, "dlanalyze",
     "emit the dependency graph as Graphviz",
     [](Options& o, const char*) { o.dot = true; }},
    {"--trace", true, "FILE", "verify mg",
     "write a Chrome trace-event JSON of the run (Perfetto-loadable)",
     [](Options& o, const char* v) { o.trace_file = v; }},
    {"--cache-entries", true, "N", "serve",
     "verdict-cache capacity in entries, 0 disables the cache "
     "(default 1024)",
     [](Options& o, const char* v) { o.cache_entries = std::atoll(v); }},
    {"--cache-bytes", true, "N", "serve",
     "verdict-cache resident-bytes ceiling (default 67108864)",
     [](Options& o, const char* v) { o.cache_bytes = std::atoll(v); }},
    {"--pretty", false, nullptr, "serve",
     "indent response envelopes (default: one response per line)",
     [](Options& o, const char*) { o.pretty = true; }},
    {"--no-cert-revalidate", false, nullptr, "serve",
     "skip re-checking memoized TMAI certificates on cache hits",
     [](Options& o, const char*) { o.cert_revalidate = false; }},
    {"--shards", true, "N", "verify mg",
     "datalog backend: split the guess scan over N shard subprocesses "
     "and merge their envelopes (first terminating event wins; "
     "default 1 = no sharding)",
     [](Options& o, const char* v) { o.shards = std::atoll(v); }},
    {"--shard-index", true, "I", "verify mg",
     "run only shard I of --shards in this process (what the "
     "orchestrator spawns; emits a per-shard envelope)",
     [](Options& o, const char* v) { o.shard_index = std::atoll(v); }},
    {"--checkpoint", true, "FILE", "verify mg",
     "write scan checkpoints to FILE (atomic tmp+rename; with --shards "
     "the orchestrator writes FILE.shard<i> per shard)",
     [](Options& o, const char* v) { o.checkpoint_file = v; }},
    {"--resume", true, "FILE", "verify mg",
     "resume the guess scan from a --checkpoint file (with --shards: "
     "per-shard FILE.shard<i>; a missing file starts that shard fresh)",
     [](Options& o, const char* v) { o.resume_file = v; }},
    {"--checkpoint-every", true, "N", "verify mg",
     "guess solves between periodic checkpoints (default 64 when "
     "--checkpoint is given)",
     [](Options& o, const char* v) { o.checkpoint_every = std::atoll(v); }},
    {"--scan-limit", true, "N", "verify mg",
     "stop after N guess solves this run and checkpoint (deterministic "
     "truncation for kill-and-resume; 0 = unlimited)",
     [](Options& o, const char* v) { o.scan_limit = std::atoll(v); }},
    {"--metrics", false, nullptr, "verify mg",
     "print the telemetry registry after the verdict",
     [](Options& o, const char*) { o.metrics = true; }},
    {"--help", false, nullptr, kAllCommands, "show this help",
     [](Options& o, const char*) { o.help = true; }},
};

// Word-exact membership of `cmd` in the space-separated `list`.
bool CommandIn(const std::string& cmd, const char* list) {
  const char* p = list;
  while (*p != '\0') {
    const char* end = std::strchr(p, ' ');
    const std::size_t len =
        end != nullptr ? static_cast<std::size_t>(end - p) : std::strlen(p);
    if (cmd.size() == len && std::strncmp(cmd.c_str(), p, len) == 0) {
      return true;
    }
    if (end == nullptr) break;
    p = end + 1;
  }
  return false;
}

const FlagSpec* FindFlag(const std::string& name) {
  for (const FlagSpec& f : kFlags) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

int GlobalUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rapar_cli verify --env FILE [--dis FILE]... [options]\n"
      "  rapar_cli mg --env FILE [--dis FILE]... --var NAME --val N ...\n"
      "  rapar_cli dump-datalog --env FILE [--dis FILE]... [--var NAME "
      "--val N]\n"
      "  rapar_cli dlanalyze --env FILE [--dis FILE]... [--guess N] "
      "[--dot]\n"
      "  rapar_cli classify FILE...\n"
      "  rapar_cli lint [--env FILE] [--dis FILE]... [FILE...]\n"
      "  rapar_cli certcheck --env FILE [--dis FILE]... --cert FILE\n"
      "  rapar_cli serve [--threads N] [--cache-entries N] "
      "[--cache-bytes N]\n"
      "run `rapar_cli <command> --help` for the command's flags\n");
  return 3;
}

// Per-subcommand help, generated from the flag table.
int CommandHelp(const std::string& cmd) {
  std::printf("usage: rapar_cli %s [flags]\nflags:\n", cmd.c_str());
  for (const FlagSpec& f : kFlags) {
    if (!CommandIn(cmd, f.commands)) continue;
    std::string lhs = f.name;
    if (f.takes_value) {
      lhs += ' ';
      lhs += f.value_name;
    }
    std::printf("  %-18s %s\n", lhs.c_str(), f.help);
  }
  return 0;
}

// Parses argv into `opts`. Returns 0 on success, 3 (after printing the
// error) on a usage error.
int ParseArgs(int argc, char** argv, Options* opts) {
  if (argc < 2) return GlobalUsage();
  opts->command = argv[1];
  if (opts->command == "--help" || opts->command == "-h") {
    GlobalUsage();
    return 3;
  }
  if (!CommandIn(opts->command, kAllCommands)) {
    std::fprintf(stderr, "unknown command: %s\n", opts->command.c_str());
    return GlobalUsage();
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      if (opts->command != "classify" && opts->command != "lint") {
        std::fprintf(stderr,
                     "unexpected argument '%s' (command %s takes no "
                     "positional arguments)\n",
                     arg.c_str(), opts->command.c_str());
        return 3;
      }
      opts->files.push_back(arg);
      continue;
    }
    // --flag=value or --flag [value]
    std::string name = arg;
    const char* inline_value = nullptr;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = argv[i] + eq + 1;
    }
    const FlagSpec* spec = FindFlag(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown flag: %s\n", name.c_str());
      return 3;
    }
    if (!CommandIn(opts->command, spec->commands)) {
      std::fprintf(stderr, "flag %s does not apply to command %s\n",
                   name.c_str(), opts->command.c_str());
      return 3;
    }
    const char* value = nullptr;
    if (spec->takes_value) {
      if (inline_value != nullptr) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag %s expects a value (%s)\n", name.c_str(),
                     spec->value_name);
        return 3;
      }
    } else if (inline_value != nullptr) {
      std::fprintf(stderr, "flag %s takes no value\n", name.c_str());
      return 3;
    }
    spec->apply(*opts, value);
  }
  return 0;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int Classify(const Options& opts) {
  if (opts.files.empty()) return GlobalUsage();
  for (const std::string& path : opts.files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 3;
    }
    rapar::Expected<rapar::Program> p = rapar::ParseProgram(text);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), p.error().c_str());
      return 3;
    }
    rapar::Classification c = rapar::Classify(p.value());
    std::printf("%s: %s  (vars=%zu regs=%zu dom=%d)\n", path.c_str(),
                c.ToString().c_str(), p.value().vars().size(),
                p.value().regs().size(), p.value().dom());
  }
  return 0;
}

int Lint(const Options& opts) {
  struct Input {
    std::string path;
    rapar::ThreadRole role;
    std::string text;
    rapar::Program program;  // parsed, later rewritten onto shared vars
  };
  std::vector<Input> inputs;
  auto add = [&](const std::string& path, rapar::ThreadRole role) {
    inputs.push_back(Input{path, role, "", rapar::Program()});
  };
  if (!opts.env_file.empty()) add(opts.env_file, rapar::ThreadRole::kEnv);
  for (const std::string& path : opts.dis_files) {
    add(path, rapar::ThreadRole::kDis);
  }
  for (const std::string& path : opts.files) {
    add(path, rapar::ThreadRole::kEnv);
  }
  if (inputs.empty()) return GlobalUsage();

  for (Input& in : inputs) {
    if (!ReadFile(in.path, &in.text)) {
      std::fprintf(stderr, "cannot read %s\n", in.path.c_str());
      return 3;
    }
    rapar::Expected<rapar::Program> p = rapar::ParseProgram(in.text);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", in.path.c_str(), p.error().c_str());
      return 3;
    }
    in.program = std::move(p).value();
  }

  // Unify variable tables by name so the observed-variable set spans the
  // whole system: a store is dead only if *no* thread loads or CASes the
  // variable (same convention as ParamSystem::Builder, but lint must not
  // reject ill-classed systems — reporting them is its job).
  rapar::VarTable shared;
  std::vector<std::vector<rapar::VarId>> mappings;
  for (const Input& in : inputs) {
    std::vector<rapar::VarId> mapping;
    for (const std::string& name : in.program.vars().names()) {
      mapping.push_back(shared.Add(name));
    }
    mappings.push_back(std::move(mapping));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const rapar::Program& p = inputs[i].program;
    inputs[i].program =
        rapar::Program(p.name(), shared, p.regs(), p.dom(),
                       rapar::RemapVars(p.body(), mappings[i]));
  }
  std::vector<rapar::Cfa> cfas;
  cfas.reserve(inputs.size());
  for (const Input& in : inputs) {
    cfas.push_back(rapar::Cfa::Build(in.program));
  }
  std::vector<const rapar::Cfa*> cfa_ptrs;
  for (const rapar::Cfa& c : cfas) cfa_ptrs.push_back(&c);
  rapar::LintOptions lint;
  lint.observed_vars = rapar::ObservedVars(cfa_ptrs, shared.size());

  // TMAI-backed whole-system notes (RA030–RA033): run the interference
  // fixpoint over all inputs at once and merge each thread's notes into
  // its file's diagnostic stream.
  rapar::tmai::TmaiSystem tmai_sys;
  tmai_sys.num_vars = shared.size();
  tmai_sys.dom = 2;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].program.dom() > tmai_sys.dom) {
      tmai_sys.dom = inputs[i].program.dom();
    }
    tmai_sys.threads.push_back(rapar::tmai::TmaiThread{
        &cfas[i], inputs[i].role == rapar::ThreadRole::kEnv});
  }
  const std::vector<std::vector<rapar::Diagnostic>> tmai_diags =
      rapar::tmai::TmaiLint(tmai_sys);

  std::size_t warnings = 0;
  std::size_t notes = 0;
  std::vector<std::pair<std::string, rapar::Diagnostic>> all;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Input& in = inputs[i];
    lint.role = in.role;
    std::vector<rapar::Diagnostic> diags =
        rapar::LintProgram(in.program, lint);
    diags.insert(diags.end(), tmai_diags[i].begin(), tmai_diags[i].end());
    rapar::SortDiagnostics(diags);
    for (const rapar::Diagnostic& d : diags) {
      if (opts.format == "json") {
        all.emplace_back(in.path, d);
      } else {
        std::printf("%s\n",
                    rapar::RenderDiagnostic(d, in.path, in.text).c_str());
      }
      (d.severity == rapar::Severity::kNote ? notes : warnings) += 1;
    }
  }
  if (opts.format == "json") {
    std::fputs(rapar::DiagnosticsToJson("lint", all).c_str(), stdout);
  } else {
    std::printf("%zu warning(s), %zu note(s)\n", warnings, notes);
  }
  return warnings > 0 ? 1 : 0;
}

rapar::Expected<rapar::ParamSystem> BuildSystem(const Options& opts) {
  std::string env_text;
  if (!ReadFile(opts.env_file, &env_text)) {
    return rapar::Expected<rapar::ParamSystem>::Error(
        "cannot read env file '" + opts.env_file + "'");
  }
  rapar::Expected<rapar::Program> env = rapar::ParseProgram(env_text);
  if (!env.ok()) {
    return rapar::Expected<rapar::ParamSystem>::Error(opts.env_file + ": " +
                                                      env.error());
  }
  rapar::ParamSystem::Builder builder;
  builder.Env(std::move(env).value()).UnrollDis(opts.unroll);
  for (const std::string& path : opts.dis_files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      return rapar::Expected<rapar::ParamSystem>::Error(
          "cannot read dis file '" + path + "'");
    }
    rapar::Expected<rapar::Program> dis = rapar::ParseProgram(text);
    if (!dis.ok()) {
      return rapar::Expected<rapar::ParamSystem>::Error(path + ": " +
                                                        dis.error());
    }
    builder.Dis(std::move(dis).value());
  }
  return builder.Build();
}

// Usage/input failure on the verify/mg path: diagnostic on stderr and —
// under --format=json — a minimal machine-readable error envelope on
// stdout (schema_version, command, error, exit_code 3), so callers that
// parse stdout (the shard orchestrator, scripts) never see a half
// envelope. Always returns 3.
int FailVerify(const Options& opts, const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  if (opts.format == "json") {
    rapar::JsonWriter w(/*pretty=*/true);
    w.BeginObject();
    w.Key("schema_version").Int(rapar::kResultSchemaVersion);
    w.Key("tool").String("rapar");
    w.Key("command").String(opts.command);
    w.Key("error").String(message);
    w.Key("exit_code").Int(3);
    w.EndObject();
    std::string out = w.TakeString();
    out += '\n';
    std::fputs(out.c_str(), stdout);
  }
  return 3;
}

// The multi-process orchestrator behind `verify --shards=N`: spawns one
// `--shard-index=i` subprocess per shard (each a fresh copy of this
// executable running the datalog backend over its residue class of the
// guess enumeration), captures the per-shard JSON envelopes, and merges
// them under first-terminating-event-wins (core/shard.h). The merged
// verdict, witness and guess count are bit-identical to a single-process
// run; per-shard checkpoints go to --checkpoint=FILE.shard<i>.
int RunShardedVerify(const Options& opts, bool mg) {
  const bool json = opts.format == "json";
  const std::string exe = rapar::SelfExecutablePath();
  if (exe.empty()) {
    return FailVerify(opts, "--shards: cannot resolve own executable path");
  }
  if (!opts.trace_file.empty() || opts.metrics) {
    std::fprintf(stderr,
                 "note: --trace/--metrics are ignored with --shards "
                 "(per-shard telemetry is in the merged envelope)\n");
  }

  std::vector<std::string> base;
  base.push_back(exe);
  base.push_back(mg ? "mg" : "verify");
  base.push_back("--env=" + opts.env_file);
  for (const std::string& d : opts.dis_files) base.push_back("--dis=" + d);
  base.push_back("--backend=datalog");
  if (opts.threads_set) {
    base.push_back("--threads=" + std::to_string(opts.threads));
  }
  if (opts.unroll != 0) {
    base.push_back("--unroll=" + std::to_string(opts.unroll));
  }
  base.push_back("--engine-storage=" + opts.engine_storage);
  if (opts.delta_solve) base.push_back("--delta-solve");
  base.push_back("--budget-ms=" + std::to_string(opts.budget_ms));
  if (mg) {
    base.push_back("--var=" + opts.goal_var);
    base.push_back("--val=" + std::to_string(opts.goal_val));
  }
  if (opts.scan_limit > 0) {
    base.push_back("--scan-limit=" + std::to_string(opts.scan_limit));
  }
  if (opts.checkpoint_every > 0) {
    base.push_back("--checkpoint-every=" +
                   std::to_string(opts.checkpoint_every));
  }
  base.push_back("--format=json");
  base.push_back("--shards=" + std::to_string(opts.shards));

  std::vector<std::vector<std::string>> argvs;
  for (long long i = 0; i < opts.shards; ++i) {
    std::vector<std::string> argv = base;
    argv.push_back("--shard-index=" + std::to_string(i));
    const std::string suffix = ".shard" + std::to_string(i);
    if (!opts.checkpoint_file.empty()) {
      argv.push_back("--checkpoint=" + opts.checkpoint_file + suffix);
    }
    if (!opts.resume_file.empty()) {
      // A shard whose checkpoint never got written starts fresh.
      const std::string path = opts.resume_file + suffix;
      if (std::ifstream(path).good()) argv.push_back("--resume=" + path);
    }
    argvs.push_back(std::move(argv));
  }

  rapar::Expected<std::vector<rapar::ShardProcessResult>> procs =
      rapar::RunShardProcesses(argvs);
  if (!procs.ok()) return FailVerify(opts, "--shards: " + procs.error());

  std::vector<std::string> envelopes;
  for (std::size_t i = 0; i < procs.value().size(); ++i) {
    const rapar::ShardProcessResult& p = procs.value()[i];
    if (p.exit_code != 0 && p.exit_code != 1 && p.exit_code != 2) {
      // The child's own diagnostic already went to the shared stderr.
      return FailVerify(opts, "shard " + std::to_string(i) +
                                  " failed (exit " +
                                  std::to_string(p.exit_code) + ")");
    }
    envelopes.push_back(p.stdout_text);
  }

  rapar::Expected<rapar::MergedShardEnvelope> merged =
      rapar::MergeShardEnvelopes(envelopes, /*pretty=*/true);
  if (!merged.ok()) return FailVerify(opts, "--shards: " + merged.error());

  if (json) {
    std::fputs(merged.value().envelope_json.c_str(), stdout);
  } else {
    std::printf("%s (merged over %lld shards)\n",
                merged.value().verdict.c_str(), opts.shards);
    if (opts.witness && merged.value().verdict == "unsafe") {
      rapar::Expected<rapar::JsonValue> doc =
          rapar::ParseJson(merged.value().envelope_json);
      if (doc.ok()) {
        if (const rapar::JsonValue* w = doc.value().Find("witness")) {
          if (w->is_string()) {
            std::printf("witness:\n%s", w->string.c_str());
          }
        }
      }
    }
  }
  return merged.value().exit_code;
}

int RunVerify(const Options& opts, bool mg) {
  if (opts.env_file.empty()) return GlobalUsage();
  const bool json = opts.format == "json";

  // Sharding / checkpoint-resume validation, then orchestrator dispatch.
  // All of it is datalog-only: the stride shards and checkpoints are
  // positions in the makeP guess enumeration, which the other backends
  // do not scan.
  const bool wants_shard_machinery =
      opts.shards != 1 || opts.shard_index >= 0 ||
      !opts.checkpoint_file.empty() || !opts.resume_file.empty() ||
      opts.checkpoint_every > 0 || opts.scan_limit > 0;
  if (wants_shard_machinery && opts.backend != "datalog") {
    return FailVerify(opts,
                      "--shards/--shard-index/--checkpoint/--resume/"
                      "--checkpoint-every/--scan-limit require "
                      "--backend=datalog");
  }
  if (opts.shards < 1) {
    return FailVerify(opts, "--shards must be >= 1");
  }
  if (opts.shard_index >= 0 && opts.shards <= 1) {
    return FailVerify(opts, "--shard-index requires --shards=N with N > 1");
  }
  if (opts.shard_index >= opts.shards) {
    return FailVerify(
        opts, "--shard-index must be in [0, --shards): got " +
                  std::to_string(opts.shard_index) + " of " +
                  std::to_string(opts.shards));
  }
  if (opts.shards > 1 && opts.shard_index < 0) {
    return RunShardedVerify(opts, mg);
  }

  // The recorder must outlive the whole run so the parse phase is on the
  // trace too.
  rapar::obs::TraceRecorder recorder;
  rapar::obs::TraceRecorder* trace =
      opts.trace_file.empty() ? nullptr : &recorder;

  const auto parse_start = std::chrono::steady_clock::now();
  rapar::Expected<rapar::ParamSystem> sys = [&] {
    rapar::obs::ScopedSpan span(trace, "parse");
    return BuildSystem(opts);
  }();
  const double parse_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - parse_start)
          .count();
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  if (!json) std::printf("system: %s\n", sys.value().Signature().c_str());

  rapar::VerifierOptions vopts;
  if (opts.backend == "simplified") {
    vopts.backend = rapar::Backend::kSimplifiedExplorer;
  } else if (opts.backend == "datalog") {
    vopts.backend = rapar::Backend::kDatalog;
  } else if (opts.backend == "concrete") {
    vopts.backend = rapar::Backend::kConcrete;
  } else if (opts.backend == "tmai") {
    vopts.backend = rapar::Backend::kTmai;
  } else if (opts.backend == "portfolio") {
    vopts.backend = rapar::Backend::kPortfolio;
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", opts.backend.c_str());
    return 3;
  }
  if (opts.tmai_domain == "smallset") {
    vopts.tmai.domain = rapar::tmai::Domain::kSmallSet;
  } else if (opts.tmai_domain == "relational") {
    vopts.tmai.domain = rapar::tmai::Domain::kRelational;
  } else if (opts.tmai_domain == "auto") {
    vopts.tmai.domain = rapar::tmai::Domain::kAuto;
  } else {
    std::fprintf(stderr, "unknown TMAI domain '%s'\n",
                 opts.tmai_domain.c_str());
    return 3;
  }
  if (opts.engine_storage == "hash") {
    vopts.datalog.engine.storage = rapar::dl::StorageMode::kHash;
  } else if (opts.engine_storage == "columnar") {
    vopts.datalog.engine.storage = rapar::dl::StorageMode::kColumnar;
  } else if (opts.engine_storage == "auto") {
    vopts.datalog.engine.storage = rapar::dl::StorageMode::kAuto;
  } else {
    std::fprintf(stderr, "unknown engine storage '%s'\n",
                 opts.engine_storage.c_str());
    return 3;
  }
  vopts.datalog.engine.delta_solve = opts.delta_solve;
  vopts.tmai.max_iterations = opts.tmai_max_iterations;
  vopts.tmai.widening_delay = opts.tmai_widening_delay;
  vopts.tmai.value_set_limit = opts.tmai_value_set_limit;
  vopts.concrete.env_threads = opts.threads;
  if (vopts.backend == rapar::Backend::kDatalog ||
      vopts.backend == rapar::Backend::kPortfolio) {
    // For the Datalog backend (raced by the portfolio) --threads selects
    // the worker-pool size (0 = all hardware threads, also the default).
    vopts.datalog.threads =
        opts.threads_set ? static_cast<unsigned>(opts.threads < 0
                                                     ? 0
                                                     : opts.threads)
                         : 0;
  }
  vopts.time_budget_ms = opts.budget_ms;
  vopts.obs.trace = trace;

  // Single-process shard / checkpoint / resume wiring (validated above:
  // datalog backend only). --shards=1 without --shard-index is the
  // default single-shard scan and emits a byte-identical envelope.
  if (opts.shard_index >= 0) {
    vopts.datalog.shard_index = static_cast<std::size_t>(opts.shard_index);
    vopts.datalog.shard_count = static_cast<std::size_t>(opts.shards);
  }
  if (opts.scan_limit > 0) {
    vopts.datalog.scan_limit = static_cast<std::size_t>(opts.scan_limit);
  }
  if (!opts.resume_file.empty()) {
    rapar::Expected<rapar::CursorCheckpoint> cp =
        rapar::LoadCheckpointFile(opts.resume_file);
    if (!cp.ok()) {
      return FailVerify(opts, opts.resume_file + ": " + cp.error());
    }
    if (cp.value().shard_index != vopts.datalog.shard_index ||
        cp.value().shard_count != vopts.datalog.shard_count) {
      return FailVerify(
          opts, opts.resume_file + ": checkpoint is for shard " +
                    std::to_string(cp.value().shard_index) + " of " +
                    std::to_string(cp.value().shard_count) +
                    ", run is shard " +
                    std::to_string(vopts.datalog.shard_index) + " of " +
                    std::to_string(vopts.datalog.shard_count));
    }
    vopts.datalog.start_index = cp.value().next_index;
    vopts.datalog.resume_scanned_base = cp.value().scanned;
  }
  if (!opts.checkpoint_file.empty()) {
    vopts.datalog.checkpoint_every =
        opts.checkpoint_every > 0
            ? static_cast<std::size_t>(opts.checkpoint_every)
            : 64;
    const std::string cp_path = opts.checkpoint_file;
    vopts.datalog.checkpoint_sink =
        [cp_path](const rapar::CursorCheckpoint& cp) {
          rapar::Expected<bool> r = rapar::SaveCheckpointFile(cp_path, cp);
          if (!r.ok()) {
            std::fprintf(stderr, "checkpoint: %s\n", r.error().c_str());
          }
        };
  }

  std::optional<std::pair<rapar::VarId, rapar::Value>> goal;
  if (mg) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid() || opts.goal_val < 0) {
      std::fprintf(stderr, "mg requires --var (declared) and --val >= 0\n");
      return 3;
    }
    goal = std::pair{var, static_cast<rapar::Value>(opts.goal_val)};
  }
  rapar::SafetyVerifier verifier(sys.value());
  rapar::Verdict v = verifier.Run(goal, vopts);
  v.telemetry.SetGauge(rapar::obs::metric::kPhaseParseMs, parse_ms);

  if (trace != nullptr && !recorder.WriteFile(opts.trace_file)) {
    std::fprintf(stderr, "cannot write trace file '%s'\n",
                 opts.trace_file.c_str());
    return 3;
  }

  if (json) {
    std::fputs(rapar::VerdictToJson(v, vopts, mg ? "mg" : "verify",
                                    sys.value().Signature())
                   .c_str(),
               stdout);
  } else {
    std::printf("%s\n", v.ToString().c_str());
    if (v.unsafe() && opts.witness) {
      std::printf("witness:\n%s", v.witness.c_str());
    }
    if (opts.metrics) {
      std::printf("metrics:\n");
      for (const rapar::obs::Telemetry::Entry& e : v.telemetry.entries()) {
        if (e.is_gauge) {
          std::printf("  %s=%.3f\n", e.name.c_str(), e.gauge);
        } else {
          std::printf("  %s=%llu\n", e.name.c_str(),
                      static_cast<unsigned long long>(e.counter));
        }
      }
    }
  }
  return rapar::VerdictExitCode(v);
}

// Re-validates a TMAI invariant certificate against the system, mirroring
// the verifier's preparation exactly (same prepass, same goal protection
// derived from the certificate) so the certified thread shapes line up.
int CertCheck(const Options& opts) {
  if (opts.env_file.empty() || opts.cert_file.empty()) return GlobalUsage();
  const bool json = opts.format == "json";

  std::string cert_text;
  if (!ReadFile(opts.cert_file, &cert_text)) {
    std::fprintf(stderr, "cannot read %s\n", opts.cert_file.c_str());
    return 3;
  }
  rapar::Expected<rapar::JsonValue> doc = rapar::ParseJson(cert_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", opts.cert_file.c_str(),
                 doc.error().c_str());
    return 3;
  }
  // Accept a whole verdict envelope: descend into its "certificate" key.
  const rapar::JsonValue* cert_json = &doc.value();
  if (cert_json->is_object()) {
    if (const rapar::JsonValue* inner = cert_json->Find("certificate")) {
      cert_json = inner;
    }
  }
  rapar::Expected<rapar::tmai::Certificate> cert =
      rapar::tmai::ParseCertificateJson(*cert_json);
  if (!cert.ok()) {
    std::fprintf(stderr, "%s: %s\n", opts.cert_file.c_str(),
                 cert.error().c_str());
    return 3;
  }

  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  // Replicate SafetyVerifier's preparation: the certificate was produced
  // against the prepassed CFAs, with the MG goal variable (if any)
  // protected from store slicing.
  rapar::SimplSystem simpl = sys.value().simpl();
  const rapar::VarId protect =
      cert.value().check_assert
          ? rapar::VarId::Invalid()
          : rapar::VarId(cert.value().goal_var);
  rapar::PrepassResult pre =
      rapar::RunPrepass(*simpl.env, simpl.dis, protect);
  std::unique_ptr<rapar::Cfa> env_owned;
  std::vector<std::unique_ptr<rapar::Cfa>> dis_owned;
  if (pre.stats.Any()) {
    env_owned = std::make_unique<rapar::Cfa>(std::move(pre.env));
    simpl.env = env_owned.get();
    simpl.dis.clear();
    for (rapar::Cfa& d : pre.dis) {
      dis_owned.push_back(std::make_unique<rapar::Cfa>(std::move(d)));
      simpl.dis.push_back(dis_owned.back().get());
    }
  }
  const rapar::tmai::TmaiSystem tsys =
      rapar::tmai::TmaiSystem::FromSimpl(simpl);

  const rapar::tmai::CertCheckResult res =
      rapar::tmai::CheckCertificate(tsys, cert.value());

  if (json) {
    rapar::obs::Telemetry t;
    t.SetCounter(rapar::obs::metric::kCertcheckValid, res.valid ? 1 : 0);
    t.SetCounter(rapar::obs::metric::kCertcheckNodes, res.nodes_checked);
    t.SetCounter(rapar::obs::metric::kCertcheckEdges, res.edges_checked);
    rapar::JsonWriter w(/*pretty=*/true);
    w.BeginObject();
    w.Key("schema_version").Int(rapar::kResultSchemaVersion);
    w.Key("tool").String("rapar");
    w.Key("command").String("certcheck");
    w.Key("system").String(sys.value().Signature());
    w.Key("valid").Bool(res.valid);
    w.Key("error");
    if (res.error.empty()) {
      w.Null();
    } else {
      w.String(res.error);
    }
    w.Key("exit_code").Int(res.valid ? 0 : 1);
    w.Key("telemetry");
    t.WriteJson(w);
    w.EndObject();
    std::string out = w.TakeString();
    out += '\n';
    std::fputs(out.c_str(), stdout);
  } else if (res.valid) {
    std::printf(
        "certificate: valid (%s domain, %zu invariant disjuncts checked "
        "at %zu edges)\n",
        rapar::tmai::DomainName(cert.value().domain), res.nodes_checked,
        res.edges_checked);
  } else {
    std::printf("certificate: INVALID: %s\n", res.error.c_str());
  }
  return res.valid ? 0 : 1;
}

int DumpDatalog(const Options& opts) {
  if (opts.env_file.empty()) return GlobalUsage();
  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  bool complete = true;
  rapar::GuessEnumOptions gopts;
  std::vector<rapar::DisGuess> guesses =
      rapar::EnumerateDisGuesses(sys.value().simpl(), gopts, &complete);
  std::printf("// %zu makeP guess(es)%s\n", guesses.size(),
              complete ? "" : " (capped)");
  rapar::MakePOptions mopts;
  if (!opts.goal_var.empty() && opts.goal_val >= 0) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid()) {
      std::fprintf(stderr, "unknown variable '%s'\n",
                   opts.goal_var.c_str());
      return 3;
    }
    mopts.goal_message = {var, static_cast<rapar::Value>(opts.goal_val)};
  }
  for (std::size_t i = 0; i < guesses.size() && i < 4; ++i) {
    std::printf("\n// ---- guess %zu ----\n%s\n", i,
                guesses[i].ToString(sys.value().simpl()).c_str());
    rapar::MakePResult q =
        rapar::MakeP(sys.value().simpl(), guesses[i], mopts);
    std::printf("%s", q.prog->ToString().c_str());
  }
  if (guesses.size() > 4) {
    std::printf("\n// (%zu further guesses elided)\n", guesses.size() - 4);
  }
  return 0;
}

int DlAnalyze(const Options& opts) {
  if (opts.env_file.empty()) return GlobalUsage();
  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  bool complete = true;
  rapar::GuessEnumOptions gopts;
  std::vector<rapar::DisGuess> guesses =
      rapar::EnumerateDisGuesses(sys.value().simpl(), gopts, &complete);
  if (opts.guess_index < 0 ||
      static_cast<std::size_t>(opts.guess_index) >= guesses.size()) {
    std::fprintf(stderr, "--guess %d out of range (have %zu guesses)\n",
                 opts.guess_index, guesses.size());
    return 3;
  }
  rapar::MakePOptions mopts;
  if (!opts.goal_var.empty() && opts.goal_val >= 0) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid()) {
      std::fprintf(stderr, "unknown variable '%s'\n",
                   opts.goal_var.c_str());
      return 3;
    }
    mopts.goal_message = {var, static_cast<rapar::Value>(opts.goal_val)};
  }
  const rapar::DisGuess& guess = guesses[opts.guess_index];
  rapar::MakePResult q = rapar::MakeP(sys.value().simpl(), guess, mopts);
  rapar::dlopt::DlAnalysis a =
      rapar::dlopt::AnalyzeDlProgram(*q.prog, q.goal);

  if (opts.dot) {
    std::printf("%s", a.graph
                          .ToDot(*q.prog,
                                 a.graph.ReachableFrom(q.goal.pred))
                          .c_str());
    return 0;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const rapar::Diagnostic& d : a.diagnostics) {
    switch (d.severity) {
      case rapar::Severity::kError:
        ++errors;
        break;
      case rapar::Severity::kWarning:
        ++warnings;
        break;
      case rapar::Severity::kNote:
        ++notes;
        break;
    }
  }

  if (opts.format == "json") {
    std::vector<std::pair<std::string, rapar::Diagnostic>> all;
    for (const rapar::Diagnostic& d : a.diagnostics) {
      all.emplace_back("makeP", d);
    }
    std::fputs(rapar::DiagnosticsToJson("dlanalyze", all).c_str(), stdout);
    return errors + warnings > 0 ? 1 : 0;
  }

  std::printf("system: %s\n", sys.value().Signature().c_str());
  std::printf("// guess %d of %zu%s\n%s\n", opts.guess_index,
              guesses.size(), complete ? "" : " (capped)",
              guess.ToString(sys.value().simpl()).c_str());
  std::printf("== dependency graph ==\n%s",
              a.graph.ToText(*q.prog).c_str());
  std::printf("== width / solver classification ==\n%s",
              a.width.ToString(*q.prog, a.graph).c_str());
  std::printf("== optimization ==\n%s\n", a.opt.stats.ToString().c_str());
  std::printf("== diagnostics ==\n");
  for (const rapar::Diagnostic& d : a.diagnostics) {
    std::printf("%s\n", rapar::RenderDiagnostic(d, "makeP", "").c_str());
  }
  std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", errors,
              warnings, notes);
  return errors + warnings > 0 ? 1 : 0;
}

// The long-lived verification daemon: newline-delimited JSON requests on
// stdin, one result envelope per stdout line (core/serve.h has the wire
// protocol). Runs until EOF on stdin.
int Serve(const Options& opts) {
  rapar::serve::ServeOptions sopts;
  sopts.threads = opts.threads_set
                      ? static_cast<unsigned>(opts.threads < 0 ? 0
                                                               : opts.threads)
                      : 0;
  sopts.cache_entries = opts.cache_entries < 0
                            ? 0
                            : static_cast<std::size_t>(opts.cache_entries);
  sopts.cache_bytes = opts.cache_bytes < 0
                          ? 0
                          : static_cast<std::size_t>(opts.cache_bytes);
  sopts.pretty = opts.pretty;
  sopts.revalidate_certificates = opts.cert_revalidate;
  rapar::serve::ServeSession session(sopts);
  session.Run(std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  const int parse_rc = ParseArgs(argc, argv, &opts);
  if (parse_rc != 0) return parse_rc;
  if (opts.help) return CommandHelp(opts.command);
  if (opts.command == "classify") return Classify(opts);
  if (opts.command == "lint") return Lint(opts);
  if (opts.command == "verify") return RunVerify(opts, /*mg=*/false);
  if (opts.command == "mg") return RunVerify(opts, /*mg=*/true);
  if (opts.command == "dump-datalog") return DumpDatalog(opts);
  if (opts.command == "dlanalyze") return DlAnalyze(opts);
  if (opts.command == "certcheck") return CertCheck(opts);
  if (opts.command == "serve") return Serve(opts);
  return GlobalUsage();
}
