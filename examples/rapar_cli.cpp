// rapar_cli — command-line front end for the verifier.
//
//   rapar_cli verify --env FILE [--dis FILE]... [options]
//   rapar_cli mg     --env FILE [--dis FILE]... --var NAME --val N [options]
//   rapar_cli dump-datalog --env FILE [--dis FILE]... [--var NAME --val N]
//   rapar_cli dlanalyze --env FILE [--dis FILE]... [--guess N] [--dot]
//   rapar_cli classify FILE...
//   rapar_cli lint [--env FILE] [--dis FILE]... [FILE...]
//
// lint runs the analysis passes (reachability, liveness, constant
// propagation, footprints) and reports diagnostics in compiler format
// (file:line:col: severity: CODE: message plus a source caret). Bare FILE
// arguments are linted as env candidates; with --env/--dis the files are
// checked as one system, so a store only counts as dead if no thread of
// the system reads the variable.
//
// dlanalyze runs makeP for one guess (--guess N, default 0) and reports
// the static analysis of the emitted Datalog program: predicate
// dependency graph, per-SCC width/solver classification, and the RA02x
// diagnostics of the query-driven optimizer (src/dlopt/). --dot prints
// the dependency graph in Graphviz format instead (query cone filled).
//
// Options:
//   --backend simplified|datalog|concrete   (default simplified)
//   --threads N        concrete backend: env threads in the instance
//                      (default 2); datalog backend: worker threads for
//                      the per-guess solves (default 0 = all hardware
//                      threads, 1 = serial) — the verdict and witness are
//                      identical for every N
//   --unroll K         unroll bound for dis loops (default 0 = reject)
//   --budget-ms N      wall-clock budget (default 30000)
//   --witness          print the witness run on UNSAFE
//   --format text|json lint/dlanalyze output format (default text); json
//                      is a flat array of diagnostic objects with stable
//                      keys file, line, col, code, severity, message
//   --guess N          dlanalyze: which makeP guess to analyze
//   --dot              dlanalyze: emit the dependency graph as Graphviz
//
// Exit code: 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 3 = usage/input error.
// For lint/dlanalyze: 0 = clean (notes allowed), 1 = warnings/errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/footprint.h"
#include "core/verifier.h"
#include "dlopt/dl_diagnostics.h"
#include "encoding/makep.h"
#include "lang/classify.h"
#include "lang/parser.h"
#include "lang/transform.h"

namespace {

struct Options {
  std::string command;
  std::string env_file;
  std::vector<std::string> dis_files;
  std::vector<std::string> files;  // classify
  std::string backend = "simplified";
  int threads = 2;
  bool threads_set = false;
  int unroll = 0;
  long long budget_ms = 30'000;
  bool witness = false;
  std::string goal_var;
  int goal_val = -1;
  std::string format = "text";
  int guess_index = 0;
  bool dot = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rapar_cli verify --env FILE [--dis FILE]... [--backend B]\n"
      "            [--threads N] [--unroll K] [--budget-ms N] [--witness]\n"
      "  rapar_cli mg --env FILE [--dis FILE]... --var NAME --val N ...\n"
      "  rapar_cli dump-datalog --env FILE [--dis FILE]... [--var NAME "
      "--val N]\n"
      "  rapar_cli dlanalyze --env FILE [--dis FILE]... [--guess N] "
      "[--dot]\n"
      "  rapar_cli classify FILE...\n"
      "  rapar_cli lint [--env FILE] [--dis FILE]... [FILE...]\n"
      "options: --format text|json (lint, dlanalyze)\n");
  return 3;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  if (argc < 2) return false;
  opts->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--env") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->env_file = v;
    } else if (arg == "--dis") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->dis_files.push_back(v);
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->backend = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->threads = std::atoi(v);
      opts->threads_set = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts->threads = std::atoi(arg.c_str() + std::strlen("--threads="));
      opts->threads_set = true;
    } else if (arg == "--unroll") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->unroll = std::atoi(v);
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->budget_ms = std::atoll(v);
    } else if (arg == "--witness") {
      opts->witness = true;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->format = v;
    } else if (arg.rfind("--format=", 0) == 0) {
      opts->format = arg.substr(std::strlen("--format="));
    } else if (arg == "--guess") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->guess_index = std::atoi(v);
    } else if (arg == "--dot") {
      opts->dot = true;
    } else if (arg == "--var") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->goal_var = v;
    } else if (arg == "--val") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->goal_val = std::atoi(v);
    } else if (!arg.empty() && arg[0] != '-') {
      opts->files.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// The machine-readable diagnostic format (--format=json): a flat array of
// objects with the stable keys file, line, col, code, severity, message.
// line/col are 0 when the diagnostic has no source position (dlanalyze
// diagnostics describe the generated encoding, not a source file).
void PrintDiagnosticsJson(
    const std::vector<std::pair<std::string, rapar::Diagnostic>>& diags) {
  std::printf("[");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& [file, d] = diags[i];
    std::printf(
        "%s\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, "
        "\"code\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\"}",
        i == 0 ? "" : ",", JsonEscape(file).c_str(), d.loc.line, d.loc.col,
        JsonEscape(d.code).c_str(), rapar::SeverityName(d.severity),
        JsonEscape(d.message).c_str());
  }
  std::printf("%s]\n", diags.empty() ? "" : "\n");
}

int Classify(const Options& opts) {
  if (opts.files.empty()) return Usage();
  for (const std::string& path : opts.files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 3;
    }
    rapar::Expected<rapar::Program> p = rapar::ParseProgram(text);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), p.error().c_str());
      return 3;
    }
    rapar::Classification c = rapar::Classify(p.value());
    std::printf("%s: %s  (vars=%zu regs=%zu dom=%d)\n", path.c_str(),
                c.ToString().c_str(), p.value().vars().size(),
                p.value().regs().size(), p.value().dom());
  }
  return 0;
}

int Lint(const Options& opts) {
  struct Input {
    std::string path;
    rapar::ThreadRole role;
    std::string text;
    rapar::Program program;  // parsed, later rewritten onto shared vars
  };
  std::vector<Input> inputs;
  auto add = [&](const std::string& path, rapar::ThreadRole role) {
    inputs.push_back(Input{path, role, "", rapar::Program()});
  };
  if (!opts.env_file.empty()) add(opts.env_file, rapar::ThreadRole::kEnv);
  for (const std::string& path : opts.dis_files) {
    add(path, rapar::ThreadRole::kDis);
  }
  for (const std::string& path : opts.files) {
    add(path, rapar::ThreadRole::kEnv);
  }
  if (inputs.empty()) return Usage();

  for (Input& in : inputs) {
    if (!ReadFile(in.path, &in.text)) {
      std::fprintf(stderr, "cannot read %s\n", in.path.c_str());
      return 3;
    }
    rapar::Expected<rapar::Program> p = rapar::ParseProgram(in.text);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", in.path.c_str(), p.error().c_str());
      return 3;
    }
    in.program = std::move(p).value();
  }

  // Unify variable tables by name so the observed-variable set spans the
  // whole system: a store is dead only if *no* thread loads or CASes the
  // variable (same convention as ParamSystem::Builder, but lint must not
  // reject ill-classed systems — reporting them is its job).
  rapar::VarTable shared;
  std::vector<std::vector<rapar::VarId>> mappings;
  for (const Input& in : inputs) {
    std::vector<rapar::VarId> mapping;
    for (const std::string& name : in.program.vars().names()) {
      mapping.push_back(shared.Add(name));
    }
    mappings.push_back(std::move(mapping));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const rapar::Program& p = inputs[i].program;
    inputs[i].program =
        rapar::Program(p.name(), shared, p.regs(), p.dom(),
                       rapar::RemapVars(p.body(), mappings[i]));
  }
  std::vector<rapar::Cfa> cfas;
  cfas.reserve(inputs.size());
  for (const Input& in : inputs) {
    cfas.push_back(rapar::Cfa::Build(in.program));
  }
  std::vector<const rapar::Cfa*> cfa_ptrs;
  for (const rapar::Cfa& c : cfas) cfa_ptrs.push_back(&c);
  rapar::LintOptions lint;
  lint.observed_vars = rapar::ObservedVars(cfa_ptrs, shared.size());

  std::size_t warnings = 0;
  std::size_t notes = 0;
  std::vector<std::pair<std::string, rapar::Diagnostic>> all;
  for (const Input& in : inputs) {
    lint.role = in.role;
    const std::vector<rapar::Diagnostic> diags =
        rapar::LintProgram(in.program, lint);
    for (const rapar::Diagnostic& d : diags) {
      if (opts.format == "json") {
        all.emplace_back(in.path, d);
      } else {
        std::printf("%s\n",
                    rapar::RenderDiagnostic(d, in.path, in.text).c_str());
      }
      (d.severity == rapar::Severity::kNote ? notes : warnings) += 1;
    }
  }
  if (opts.format == "json") {
    PrintDiagnosticsJson(all);
  } else {
    std::printf("%zu warning(s), %zu note(s)\n", warnings, notes);
  }
  return warnings > 0 ? 1 : 0;
}

rapar::Expected<rapar::ParamSystem> BuildSystem(const Options& opts) {
  std::string env_text;
  if (!ReadFile(opts.env_file, &env_text)) {
    return rapar::Expected<rapar::ParamSystem>::Error(
        "cannot read env file '" + opts.env_file + "'");
  }
  rapar::Expected<rapar::Program> env = rapar::ParseProgram(env_text);
  if (!env.ok()) {
    return rapar::Expected<rapar::ParamSystem>::Error(opts.env_file + ": " +
                                                      env.error());
  }
  rapar::ParamSystem::Builder builder;
  builder.Env(std::move(env).value()).UnrollDis(opts.unroll);
  for (const std::string& path : opts.dis_files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      return rapar::Expected<rapar::ParamSystem>::Error(
          "cannot read dis file '" + path + "'");
    }
    rapar::Expected<rapar::Program> dis = rapar::ParseProgram(text);
    if (!dis.ok()) {
      return rapar::Expected<rapar::ParamSystem>::Error(path + ": " +
                                                        dis.error());
    }
    builder.Dis(std::move(dis).value());
  }
  return builder.Build();
}

int RunVerify(const Options& opts, bool mg) {
  if (opts.env_file.empty()) return Usage();
  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  std::printf("system: %s\n", sys.value().Signature().c_str());

  rapar::VerifierOptions vopts;
  if (opts.backend == "simplified") {
    vopts.backend = rapar::Backend::kSimplifiedExplorer;
  } else if (opts.backend == "datalog") {
    vopts.backend = rapar::Backend::kDatalog;
  } else if (opts.backend == "concrete") {
    vopts.backend = rapar::Backend::kConcrete;
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", opts.backend.c_str());
    return 3;
  }
  vopts.concrete_env_threads = opts.threads;
  if (vopts.backend == rapar::Backend::kDatalog) {
    // For the Datalog backend --threads selects the worker-pool size
    // (0 = all hardware threads, which is also the default).
    vopts.threads =
        opts.threads_set ? static_cast<unsigned>(opts.threads < 0
                                                     ? 0
                                                     : opts.threads)
                         : 0;
  }
  vopts.time_budget_ms = opts.budget_ms;

  rapar::SafetyVerifier verifier(sys.value());
  rapar::Verdict v;
  if (mg) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid() || opts.goal_val < 0) {
      std::fprintf(stderr, "mg requires --var (declared) and --val >= 0\n");
      return 3;
    }
    v = verifier.VerifyMessageGeneration(
        var, static_cast<rapar::Value>(opts.goal_val), vopts);
  } else {
    v = verifier.Verify(vopts);
  }
  std::printf("%s\n", v.ToString().c_str());
  if (v.unsafe() && opts.witness) {
    std::printf("witness:\n%s", v.witness.c_str());
  }
  return v.unsafe() ? 1 : (v.safe() ? 0 : 2);
}

int DumpDatalog(const Options& opts) {
  if (opts.env_file.empty()) return Usage();
  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  bool complete = true;
  rapar::GuessEnumOptions gopts;
  std::vector<rapar::DisGuess> guesses =
      rapar::EnumerateDisGuesses(sys.value().simpl(), gopts, &complete);
  std::printf("// %zu makeP guess(es)%s\n", guesses.size(),
              complete ? "" : " (capped)");
  rapar::MakePOptions mopts;
  if (!opts.goal_var.empty() && opts.goal_val >= 0) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid()) {
      std::fprintf(stderr, "unknown variable '%s'\n",
                   opts.goal_var.c_str());
      return 3;
    }
    mopts.goal_message = {var, static_cast<rapar::Value>(opts.goal_val)};
  }
  for (std::size_t i = 0; i < guesses.size() && i < 4; ++i) {
    std::printf("\n// ---- guess %zu ----\n%s\n", i,
                guesses[i].ToString(sys.value().simpl()).c_str());
    rapar::MakePResult q =
        rapar::MakeP(sys.value().simpl(), guesses[i], mopts);
    std::printf("%s", q.prog->ToString().c_str());
  }
  if (guesses.size() > 4) {
    std::printf("\n// (%zu further guesses elided)\n", guesses.size() - 4);
  }
  return 0;
}

int DlAnalyze(const Options& opts) {
  if (opts.env_file.empty()) return Usage();
  rapar::Expected<rapar::ParamSystem> sys = BuildSystem(opts);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().c_str());
    return 3;
  }
  bool complete = true;
  rapar::GuessEnumOptions gopts;
  std::vector<rapar::DisGuess> guesses =
      rapar::EnumerateDisGuesses(sys.value().simpl(), gopts, &complete);
  if (opts.guess_index < 0 ||
      static_cast<std::size_t>(opts.guess_index) >= guesses.size()) {
    std::fprintf(stderr, "--guess %d out of range (have %zu guesses)\n",
                 opts.guess_index, guesses.size());
    return 3;
  }
  rapar::MakePOptions mopts;
  if (!opts.goal_var.empty() && opts.goal_val >= 0) {
    rapar::VarId var = sys.value().vars().Find(opts.goal_var);
    if (!var.valid()) {
      std::fprintf(stderr, "unknown variable '%s'\n",
                   opts.goal_var.c_str());
      return 3;
    }
    mopts.goal_message = {var, static_cast<rapar::Value>(opts.goal_val)};
  }
  const rapar::DisGuess& guess = guesses[opts.guess_index];
  rapar::MakePResult q = rapar::MakeP(sys.value().simpl(), guess, mopts);
  rapar::dlopt::DlAnalysis a =
      rapar::dlopt::AnalyzeDlProgram(*q.prog, q.goal);

  if (opts.dot) {
    std::printf("%s", a.graph
                          .ToDot(*q.prog,
                                 a.graph.ReachableFrom(q.goal.pred))
                          .c_str());
    return 0;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const rapar::Diagnostic& d : a.diagnostics) {
    switch (d.severity) {
      case rapar::Severity::kError:
        ++errors;
        break;
      case rapar::Severity::kWarning:
        ++warnings;
        break;
      case rapar::Severity::kNote:
        ++notes;
        break;
    }
  }

  if (opts.format == "json") {
    std::vector<std::pair<std::string, rapar::Diagnostic>> all;
    for (const rapar::Diagnostic& d : a.diagnostics) {
      all.emplace_back("makeP", d);
    }
    PrintDiagnosticsJson(all);
    return errors + warnings > 0 ? 1 : 0;
  }

  std::printf("system: %s\n", sys.value().Signature().c_str());
  std::printf("// guess %d of %zu%s\n%s\n", opts.guess_index,
              guesses.size(), complete ? "" : " (capped)",
              guess.ToString(sys.value().simpl()).c_str());
  std::printf("== dependency graph ==\n%s",
              a.graph.ToText(*q.prog).c_str());
  std::printf("== width / solver classification ==\n%s",
              a.width.ToString(*q.prog, a.graph).c_str());
  std::printf("== optimization ==\n%s\n", a.opt.stats.ToString().c_str());
  std::printf("== diagnostics ==\n");
  for (const rapar::Diagnostic& d : a.diagnostics) {
    std::printf("%s\n", rapar::RenderDiagnostic(d, "makeP", "").c_str());
  }
  std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", errors,
              warnings, notes);
  return errors + warnings > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage();
  if (opts.command == "classify") return Classify(opts);
  if (opts.command == "lint") return Lint(opts);
  if (opts.command == "verify") return RunVerify(opts, /*mg=*/false);
  if (opts.command == "mg") return RunVerify(opts, /*mg=*/true);
  if (opts.command == "dump-datalog") return DumpDatalog(opts);
  if (opts.command == "dlanalyze") return DlAnalyze(opts);
  return Usage();
}
