// A QBF solver built out of the PSPACE-hardness reduction (§5, Figure 6).
//
// Every QBF Ψ = ∀u_0 ∃e_1 … ∀u_n Φ is compiled to a PureRA program
// (stores of the constant 1, load-and-check steps, no registers beyond the
// conventions) whose parameterized safety verification answers Ψ. This is
// the reduction run *forwards*: it demonstrates that the synchronization
// structure of RA alone can evaluate quantified Boolean formulas.
#include <cstdio>

#include "core/verifier.h"
#include "lang/classify.h"
#include "lowerbound/qbf.h"
#include "lowerbound/tqbf_reduction.h"

namespace {

void Solve(const char* title, const rapar::Qbf& qbf) {
  const bool truth = rapar::EvalQbf(qbf);

  rapar::Program prog = rapar::TqbfToPureRa(qbf);
  rapar::Classification cls = rapar::Classify(prog);
  rapar::Expected<rapar::ParamSystem> sys = rapar::TqbfSystem(qbf);
  if (!sys.ok()) {
    std::fprintf(stderr, "build error: %s\n", sys.error().c_str());
    return;
  }
  rapar::SafetyVerifier verifier(sys.value());
  rapar::Verdict v = verifier.Run(std::nullopt);

  std::printf("%s\n  %s\n", title, qbf.ToString().c_str());
  std::printf("  program: %zu shared vars, class %s%s\n",
              sys.value().vars().size(), cls.ToString().c_str(),
              cls.pure_ra ? " (PureRA)" : "");
  std::printf("  direct evaluation : %s\n", truth ? "TRUE" : "FALSE");
  std::printf("  via RA verifier   : %s (%s)\n\n",
              v.unsafe() ? "TRUE" : "FALSE", v.ToString().c_str());
}

}  // namespace

int main() {
  using rapar::QAnd;
  using rapar::QLit;
  using rapar::QOr;
  using rapar::Qbf;

  // ∀u0. (u0 | !u0)
  Qbf taut;
  taut.n = 0;
  taut.matrix = QOr({QLit(Qbf::U(0)), QLit(Qbf::U(0), true)});
  Solve("Tautology:", taut);

  // ∀u0. u0
  Qbf contra;
  contra.n = 0;
  contra.matrix = QLit(Qbf::U(0));
  Solve("Contradiction:", contra);

  // ∀u0 ∃e1 ∀u1. (e1 <-> u0): true, the ∃ player copies u0.
  Qbf copy;
  copy.n = 1;
  copy.matrix = QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(0))}),
                     QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(0), true)})});
  Solve("Copy game (true):", copy);

  // ∀u0 ∃e1 ∀u1. (e1 <-> u1): false, u1 is chosen after e1.
  Qbf predict;
  predict.n = 1;
  predict.matrix =
      QOr({QAnd({QLit(Qbf::E(1)), QLit(Qbf::U(1))}),
           QAnd({QLit(Qbf::E(1), true), QLit(Qbf::U(1), true)})});
  Solve("Prediction game (false):", predict);

  // A batch of random formulas.
  rapar::Rng rng(2024);
  int agreements = 0;
  const int kRuns = 10;
  for (int i = 0; i < kRuns; ++i) {
    rapar::Qbf qbf = rapar::RandomQbf(rng, 1 + (i % 2), 5);
    rapar::Expected<rapar::ParamSystem> sys = rapar::TqbfSystem(qbf);
    rapar::SafetyVerifier verifier(sys.value());
    const bool via_ra = verifier.Run(std::nullopt).unsafe();
    const bool direct = rapar::EvalQbf(qbf);
    if (via_ra == direct) ++agreements;
  }
  std::printf("random formulas: %d/%d verifier/direct agreements\n",
              agreements, kRuns);
  return agreements == kRuns ? 0 : 1;
}
